"""In-run launch memoization: replay repeated launches bit-identically.

The paper's timing methodology (and the benchsuite reproducing it)
repeats *identical* kernel launches to average wall-clock noise; on the
simulator's virtual clock every repeat recomputes exactly the same
thing.  This module gives :class:`~repro.sim.device.SimDevice` a memo
table of completed launches so a repeat replays the recorded outcome
instead of re-stepping every block.

The contract is strict bit-identity — a memoized replay must leave the
device (memory bytes, cache contents, every profiler counter) in
exactly the state per-block execution would have, and produce a
byte-identical ``canonical_results_json``.  Three mechanisms carry it:

* **Launch key + input guards.**  A launch is keyed by (kernel digest,
  prepared-argument bytes, grid, block); the device spec is implicit in
  the per-device table.  A key match alone is not enough: the entry
  also records a digest of every byte the kernel *read before writing*
  (its external input) and a signature of the cache hierarchy's exact
  pre-launch content (line sets + LRU order).  Both must match the
  current device state or the launch re-executes — cache state changes
  hit/miss costs, and memory content changes results.
* **Write post-images.**  During recording, :class:`FlatMemory` traces
  the byte intervals each store covers (launches with scattered or
  wrapping stores are simply not memoized); replay writes the recorded
  post-image bytes back.  Reads are traced as coarse per-call
  intervals hashed in execution order — over-approximating the read
  set can only cause spurious misses, never wrong hits.
* **Exact counter replay.**  Integer counters (cache hits/misses, gmem
  requests/transactions, shared/spill accounting, region counts) are
  restored by adding recorded integral deltas.  ``dram_bytes`` is a
  float fold whose value depends on summation order, so the recording
  journals every individual add and replay re-applies the sequence —
  the running float state evolves through the identical op sequence it
  would under real execution.

Timing, occupancy, and the launch profile are *recomputed* from the
replayed statistics through the normal code path, so derived numbers
cannot drift from what execution would produce.
"""
from __future__ import annotations

import hashlib
import os

from .interp import LaunchStats

__all__ = ["LaunchMemo", "kernel_digest", "memo_enabled"]

#: per-device entry cap — a bench unit launches a handful of kernels,
#: so this is generous; the table stops growing past it
_CAP = 256

#: refuse to store entries whose post-image would exceed this (bytes);
#: keeps the memo table's memory footprint bounded
_MAX_POST_BYTES = 32 << 20

#: cap on the first-sight key set (see :meth:`LaunchMemo.can_record`)
_SEEN_CAP = 4096


def memo_enabled() -> bool:
    """Launch memoization is on unless ``REPRO_SIM_MEMO=0``."""
    return os.environ.get("REPRO_SIM_MEMO", "1") != "0"


def kernel_digest(kernel) -> str:
    """Stable content digest of a compiled kernel, memoized on it."""
    return kernel.content_digest()


def _args_sig(prepared: dict) -> tuple:
    return tuple(
        (name, v.dtype.char, v.tobytes())
        for name, v in sorted(prepared.items())
    )


def _bank_iter(memsys):
    """Every cache bank of the memory system, in a stable order."""
    for name, banks in sorted(memsys.cache_groups().items()):
        for i, bank in enumerate(banks):
            yield f"{name}.{i}", bank


def cache_signature(memsys) -> tuple:
    """Exact content signature of the cache hierarchy.

    Captures what determines future hit/miss behaviour: per bank, the
    materialized sets with their resident line ids in LRU order.  Null
    caches (the GT200 global path) carry no state and sign as None.
    """
    sig = []
    for label, bank in _bank_iter(memsys):
        data = getattr(bank, "_data", None)
        if data is None:
            sig.append((label, None))
        else:
            sig.append(
                (
                    label,
                    tuple(
                        sorted(
                            (si, tuple(od.keys())) for si, od in data.items()
                        )
                    ),
                )
            )
    return tuple(sig)


def _restore_caches(memsys, sig: tuple) -> None:
    from collections import OrderedDict

    for (label, content), (_, bank) in zip(sig, _bank_iter(memsys)):
        if content is None:
            continue
        bank._data = {
            si: OrderedDict((k, True) for k in keys) for si, keys in content
        }


def _copy_stats(stats: LaunchStats) -> LaunchStats:
    out = LaunchStats(len(stats.comp_cycles))
    out.comp_cycles = stats.comp_cycles.copy()
    out.mem_cycles = stats.mem_cycles.copy()
    out.dyn_hist = stats.dyn_hist.copy()
    out.cyc_hist = stats.cyc_hist.copy()
    out.warp_instructions = stats.warp_instructions
    out.mem_instructions = stats.mem_instructions
    out.blocks = stats.blocks
    out.barriers = stats.barriers
    out.ilp_factor = stats.ilp_factor
    return out


class _Entry:
    __slots__ = (
        "read_intervals",
        "read_digest",
        "post_image",
        "pre_caches",
        "post_caches",
        "stats",
        "int_deltas",
        "bank_deltas",
        "region_delta",
        "dram_log",
        "spill_delta",
    )


class LaunchMemo:
    """Per-device memo table of completed launches."""

    def __init__(self) -> None:
        self._table: dict = {}
        self._seen: set = set()
        self.hits = 0
        self.misses = 0
        self.skipped = 0  # untraceable launches (scattered/wrapping stores)

    @staticmethod
    def key(kernel, prepared: dict, grid: tuple, block: tuple) -> tuple:
        return (kernel_digest(kernel), _args_sig(prepared), grid, block)

    def can_record(self, key: tuple) -> bool:
        """True if a completed launch under ``key`` should be traced.

        Recording is deferred to the *second* sight of a key: most
        launches never repeat, and tracing them would tax the common
        case for nothing.  A guard miss on an already-recorded key
        re-records (replacing the entry) — the early sights of a
        repeated launch run on cold caches, while every later repeat
        sees the warmed steady state, so re-recording converges on a
        hitting entry after at most one miss.
        """
        if key in self._table:
            return True
        if key in self._seen:
            return len(self._table) < _CAP
        if len(self._seen) < _SEEN_CAP:
            self._seen.add(key)
        return False

    # -- lookup --------------------------------------------------------
    def lookup(self, key: tuple, mem, memsys):
        """Return the matching entry, or None (guards included)."""
        e = self._table.get(key)
        if e is None:
            self.misses += 1
            return None
        # input guard: every externally-read byte must be unchanged
        h = hashlib.blake2b(digest_size=16)
        buf = mem._buf
        for lo, hi in e.read_intervals:
            h.update(buf[lo:hi])
        if h.digest() != e.read_digest:
            self.misses += 1
            return None
        # cache guard: hit/miss costs depend on exact pre-launch state
        if cache_signature(memsys) != e.pre_caches:
            self.misses += 1
            return None
        self.hits += 1
        return e

    # -- replay --------------------------------------------------------
    def replay(self, e, mem, memsys) -> LaunchStats:
        """Apply a recorded launch's effects; returns its LaunchStats."""
        buf = mem._buf
        for lo, data in e.post_image:
            buf[lo : lo + data.size] = data
        _restore_caches(memsys, e.post_caches)
        (d_req, d_tx, d_sh_acc, d_sh_rep) = e.int_deltas
        memsys.gmem_requests += d_req
        memsys.gmem_transactions += d_tx
        memsys.shared_accesses += d_sh_acc
        memsys.shared_replays += d_sh_rep
        # spill adds are whole bytes: integer-exact as a single delta
        memsys.spill_bytes += e.spill_delta
        # DRAM bytes are an order-sensitive float fold: re-apply the
        # recorded add sequence so the running value evolves through
        # exactly the ops real execution would perform
        dram = memsys.dram_bytes
        for cu, amt in e.dram_log:
            dram[cu] += amt
        memsys.region_counts.update(e.region_delta)
        for (_, d_hits, d_misses), (_, bank) in zip(
            e.bank_deltas, _bank_iter(memsys)
        ):
            bank.stats.hits += d_hits
            bank.stats.misses += d_misses
        return _copy_stats(e.stats)

    # -- recording -----------------------------------------------------
    def record(
        self,
        key: tuple,
        mem,
        memsys,
        trace: dict,
        pre_caches: tuple,
        pre_counters: dict,
        pre_banks: list,
        pre_regions,
        stats: LaunchStats,
    ) -> None:
        """Store a completed launch, if its trace is exact."""
        if not trace["ok"] or mem.oob_accesses != pre_counters["oob"]:
            self.skipped += 1
            return
        post_bytes = sum(hi - lo for lo, hi in trace["writes"])
        if post_bytes > _MAX_POST_BYTES or (
            key not in self._table and len(self._table) >= _CAP
        ):
            self.skipped += 1
            return
        e = _Entry()
        e.read_intervals = trace["reads"]
        e.read_digest = trace["digest"]
        e.post_image = [
            (lo, mem._buf[lo:hi].copy()) for lo, hi in trace["writes"]
        ]
        e.pre_caches = pre_caches
        e.post_caches = cache_signature(memsys)
        e.stats = _copy_stats(stats)
        e.int_deltas = (
            memsys.gmem_requests - pre_counters["gmem_requests"],
            memsys.gmem_transactions - pre_counters["gmem_transactions"],
            memsys.shared_accesses - pre_counters["shared_accesses"],
            memsys.shared_replays - pre_counters["shared_replays"],
        )
        e.spill_delta = memsys.spill_bytes - pre_counters["spill_bytes"]
        e.dram_log = trace["dram_log"]
        e.region_delta = {
            k: v - pre_regions.get(k, 0)
            for k, v in memsys.region_counts.items()
            if v != pre_regions.get(k, 0)
        }
        e.bank_deltas = [
            (label, bank.stats.hits - h0, bank.stats.misses - m0)
            for (label, bank), (h0, m0) in zip(_bank_iter(memsys), pre_banks)
        ]
        self._table[key] = e

    @staticmethod
    def pre_counters(mem, memsys) -> dict:
        return {
            "oob": mem.oob_accesses,
            "gmem_requests": memsys.gmem_requests,
            "gmem_transactions": memsys.gmem_transactions,
            "shared_accesses": memsys.shared_accesses,
            "shared_replays": memsys.shared_replays,
            "spill_bytes": memsys.spill_bytes,
        }

    @staticmethod
    def pre_banks(memsys) -> list:
        return [bank.stats.snapshot() for _, bank in _bank_iter(memsys)]

    def stats_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "skipped": self.skipped,
            "entries": len(self._table),
        }
