"""The concrete rewrite-rule set.

Each rule encodes one hand-optimization from the paper's §V–VI as a
mechanical transformation with an explicit legality condition:

==========  ==============================================================
``unroll``  source-level loop unrolling by 2/4/8 or ``full`` (§IV-B.2)
``pragma``  attach ``#pragma unroll`` and let the *compiler* unroll —
            the FDTD Fig. 6–7 experiment expressed as a rule
``tile``    strip-mine a constant-trip loop (thread-coarsening shape)
``vec``     widen a load/store loop: group ``w`` iterations, loads first
``cse``     hoist repeated pure subexpressions into a single local
``promote`` move a read-only global pointer into ``__constant`` (Fig. 8)
``demote``  the inverse of ``promote``
``texify``  route loads through the texture path (CUDA only, Fig. 4/5)
``untex``   the inverse of ``texify``
==========  ==============================================================

Legality conditions err conservative: a rule that does not match simply
generates no variant at that site.  Whatever *does* match must preserve
semantics bit-for-bit — the differential harness holds every rule to
that.
"""
from __future__ import annotations

import dataclasses
from typing import Optional

from ..expr import BinOp, BufferRef, Const, Expr, Load, Select, Var
from ..stmt import Assign, Barrier, For, If, Kernel, Let, Store, Unroll, UNROLL_FULL, While
from ..transform import const_trip, expand_full, expand_partial, rename_body
from ..types import AddrSpace
from ..visit import map_expr, map_stmts, stmt_exprs, walk_exprs, walk_stmts
from .core import MatchContext, RewriteError, Rule

__all__ = [
    "UnrollRule",
    "PragmaUnrollRule",
    "TileRule",
    "VectorizeRule",
    "CSERule",
    "PromoteConstRule",
    "DemoteConstRule",
    "TexturePromoteRule",
    "TextureDemoteRule",
    "CATALOG",
    "make_rule",
    "REWRITE_MAX_EXPANSION",
]

#: same guard the compiler pass applies: refuse pathological expansions
REWRITE_MAX_EXPANSION = 1024


def _assigns_loop_var(s: For) -> bool:
    return any(
        isinstance(x, Assign) and x.var.name == s.var.name for x in walk_stmts(s.body)
    )


def _parse_factor(arg: str):
    if arg == "full":
        return "full"
    try:
        n = int(arg)
    except ValueError:
        raise RewriteError(f"bad unroll-style factor {arg!r}") from None
    if n < 2:
        raise RewriteError(f"unroll-style factor must be >= 2, got {arg!r}")
    return n


# ---------------------------------------------------------------------------
# loop rules
# ---------------------------------------------------------------------------


class UnrollRule(Rule):
    """Source-level unroll of a constant-trip loop.

    Legal when the trip count is a compile-time constant (so the copies
    execute uniformly — a barrier in the body stays convergent) and the
    body never reassigns the induction variable.
    """

    name = "unroll"
    kind = "stmt"

    def __init__(self, factor):
        self.factor = _parse_factor(str(factor))

    def describe(self) -> str:
        return f"unroll:{self.factor}"

    def matches(self, node, ctx: MatchContext) -> Optional[dict]:
        if not isinstance(node, For):
            return None
        trip = const_trip(node)
        if trip is None or trip < 2 or trip > REWRITE_MAX_EXPANSION:
            return None
        if self.factor != "full" and self.factor >= trip:
            return None  # that spelling is canonically `full`
        if _assigns_loop_var(node):
            return None
        return {"node": node, "site": node.var.name, "trip": trip}

    def apply(self, bindings: dict):
        s = bindings["node"]
        if self.factor == "full":
            return expand_full(s)
        return expand_partial(s, self.factor)


class PragmaUnrollRule(Rule):
    """Attach ``#pragma unroll [N]`` and leave expansion to the compiler.

    Always semantics-preserving (a pragma is advice); the interesting
    behaviour difference is *which compiler honors it* — NVOPENCC does,
    CLC does not — which is the paper's Fig. 6–7 FDTD experiment.
    """

    name = "pragma"
    kind = "stmt"

    def __init__(self, factor):
        self.factor = _parse_factor(str(factor))

    def describe(self) -> str:
        return f"pragma:{self.factor}"

    def matches(self, node, ctx: MatchContext) -> Optional[dict]:
        if not isinstance(node, For) or node.unroll is not None:
            return None
        return {"node": node, "site": node.var.name}

    def apply(self, bindings: dict):
        s = bindings["node"]
        factor = UNROLL_FULL if self.factor == "full" else self.factor
        return For(
            s.var, s.start, s.stop, s.step, s.body, Unroll(factor, s.var.name)
        )


class TileRule(Rule):
    """Strip-mine ``for i in [lo,hi)`` into outer×inner with tile ``t``.

    The inner loop keeps the original induction variable so the body is
    reused untouched; only legal when ``t`` divides the (constant) trip
    count, which keeps the bounds exact and the loop barrier-uniform.
    """

    name = "tile"
    kind = "stmt"

    def __init__(self, factor):
        f = _parse_factor(str(factor))
        if f == "full":
            raise RewriteError("tile factor must be a number")
        self.t = f

    def describe(self) -> str:
        return f"tile:{self.t}"

    def matches(self, node, ctx: MatchContext) -> Optional[dict]:
        if not isinstance(node, For):
            return None
        trip = const_trip(node)
        if trip is None or trip <= self.t or trip % self.t:
            return None
        if _assigns_loop_var(node):
            return None
        return {"node": node, "site": node.var.name}

    def apply(self, bindings: dict):
        s = bindings["node"]
        ctx: MatchContext = bindings["ctx"]
        st = int(s.step.value)
        stride = Const(self.t * st, s.var.vtype)
        outer = Var(ctx.fresh(f"{s.var.name}_t"), s.var.vtype)
        inner = For(
            s.var, outer, BinOp("add", outer, stride), s.step, s.body, s.unroll
        )
        return For(outer, s.start, s.stop, stride, (inner,), None)


class VectorizeRule(Rule):
    """Widen a straight-line load/store loop by ``w``.

    Groups ``w`` consecutive iterations, emitting every copy's ``Let``
    (the loads) before any copy's ``Store`` — the access shape a
    ``float4`` load/store widening produces.  Legal only when the body
    is straight-line ``Let``/``Store`` code and no buffer is both loaded
    and stored (moving iteration ``k``'s loads ahead of iteration
    ``k-1``'s stores must not read a location those stores wrote).
    """

    name = "vec"
    kind = "stmt"

    def __init__(self, factor):
        f = _parse_factor(str(factor))
        if f == "full":
            raise RewriteError("vector width must be a number")
        self.w = f

    def describe(self) -> str:
        return f"vec:{self.w}"

    def matches(self, node, ctx: MatchContext) -> Optional[dict]:
        if not isinstance(node, For):
            return None
        trip = const_trip(node)
        if trip is None or trip < self.w or trip % self.w:
            return None
        stored, loaded = set(), set()
        has_store = False
        for s in node.body:
            if isinstance(s, Store):
                has_store = True
                stored.add(s.buf.name)
            elif not isinstance(s, Let):
                return None  # control flow / barriers: not a streaming loop
            for top in stmt_exprs(s):
                for e in walk_exprs(top):
                    if isinstance(e, Load):
                        loaded.add(e.buf.name)
        if not has_store or (stored & loaded):
            return None
        return {"node": node, "site": node.var.name}

    def apply(self, bindings: dict):
        s = bindings["node"]
        st = int(s.step.value)
        lets, stores = [], []
        for k in range(self.w):
            if k:
                mapping = {
                    s.var.name: BinOp("add", s.var, Const(k * st, s.var.vtype))
                }
            else:
                mapping = {s.var.name: s.var}
            for x in rename_body(s.body, mapping, f"__v{s.var.name}{k}"):
                (stores if isinstance(x, Store) else lets).append(x)
        return For(
            s.var,
            s.start,
            s.stop,
            Const(self.w * st, s.var.vtype),
            tuple(lets + stores),
            None,
        )


# ---------------------------------------------------------------------------
# expression rule: common-subexpression elimination
# ---------------------------------------------------------------------------

#: statements whose direct expressions are evaluated exactly once per
#: execution of the statement — the positions CSE may hoist from.  For
#: bounds and While conditions are re-evaluated per iteration, so a
#: hoist there would *change* how often the expression runs.
_CSE_STMTS = (Let, Assign, Store, If)


def _expr_size(e: Expr) -> int:
    return sum(1 for _ in walk_exprs(e))


def _cse_candidate(tops) -> Optional[Expr]:
    """Best repeated pure subexpression across ``tops``, or None.

    A candidate must be non-trivial (more than a leaf), occur at least
    twice, and — if it contains a ``Load`` — occur at least once outside
    any ``Select`` arm, so hoisting cannot introduce an out-of-bounds
    access the original never made.
    """
    seen: dict = {}  # key -> [count, node, unconditional, order]
    order = [0]

    def scan(e: Expr, conditional: bool) -> None:
        k = e.key()
        rec = seen.get(k)
        if rec is None:
            seen[k] = rec = [0, e, False, order[0]]
            order[0] += 1
        rec[0] += 1
        rec[2] = rec[2] or not conditional
        if isinstance(e, Select):
            scan(e.pred, conditional)
            scan(e.a, True)
            scan(e.b, True)
        else:
            from ..visit import sub_exprs

            for c in sub_exprs(e):
                scan(c, conditional)

    for top in tops:
        scan(top, False)

    best = None
    for count, node, uncond, pos in seen.values():
        if count < 2 or _expr_size(node) < 2:
            continue
        if not uncond and any(isinstance(x, Load) for x in walk_exprs(node)):
            continue
        rank = (_expr_size(node), count, -pos)
        if best is None or rank > best[0]:
            best = (rank, node)
    return None if best is None else best[1]


class CSERule(Rule):
    """Hoist the largest repeated subexpression of each statement.

    Works statement-locally: the new ``Let`` lands immediately before
    the statement it serves, so scoping and evaluation order are
    untouched; every variable the expression reads is already in scope
    there.
    """

    name = "cse"
    kind = "kernel"

    def describe(self) -> str:
        return "cse"

    def matches(self, node, ctx: MatchContext) -> Optional[dict]:
        if not isinstance(node, Kernel):
            return None
        for s in walk_stmts(node.body):
            if isinstance(s, _CSE_STMTS) and _cse_candidate(stmt_exprs(s)):
                return {"node": node, "site": "body"}
        return None

    def apply(self, bindings: dict):
        kernel: Kernel = bindings["node"]
        ctx: MatchContext = bindings["ctx"]

        def fn(s):
            if not isinstance(s, _CSE_STMTS):
                return s
            cand = _cse_candidate(stmt_exprs(s))
            if cand is None:
                return s
            ckey = cand.key()
            v = Var(ctx.fresh("_cse"), cand.dtype)

            def repl(e: Expr) -> Expr:
                return v if e.key() == ckey else e

            from ..visit import map_stmt_exprs

            return [Let(v, cand), map_stmt_exprs(s, lambda e: map_expr(e, repl))]

        return dataclasses.replace(
            kernel,
            params=list(kernel.params),
            body=map_stmts(kernel.body, fn),
            shared=list(kernel.shared),
        )


# ---------------------------------------------------------------------------
# address-space rules
# ---------------------------------------------------------------------------


class _BufferRule(Rule):
    kind = "buffer"

    def matches(self, node, ctx: MatchContext) -> Optional[dict]:
        if not isinstance(node, BufferRef):
            return None
        if not self._legal(node, ctx):
            return None
        return {"node": node, "site": node.name}

    def _legal(self, buf: BufferRef, ctx: MatchContext) -> bool:
        raise NotImplementedError


class PromoteConstRule(_BufferRule):
    """Global → ``__constant`` for a read-only pointer parameter.

    The paper's Fig. 8 Sobel experiment: the filter mask moves into
    constant memory.  Legal only when the kernel never stores through
    the pointer and never reads it via the texture path (texture binds
    global buffers only).
    """

    name = "promote"

    def describe(self) -> str:
        return "promote"

    def _legal(self, buf: BufferRef, ctx: MatchContext) -> bool:
        return (
            buf.space is AddrSpace.GLOBAL
            and buf.name in ctx.loaded
            and buf.name not in ctx.stored
            and buf.name not in ctx.tex_loaded
        )

    def apply(self, bindings: dict) -> BufferRef:
        return dataclasses.replace(bindings["node"], space=AddrSpace.CONST)


class DemoteConstRule(_BufferRule):
    """``__constant`` → global; always legal (reads stay reads)."""

    name = "demote"

    def describe(self) -> str:
        return "demote"

    def _legal(self, buf: BufferRef, ctx: MatchContext) -> bool:
        return buf.space is AddrSpace.CONST

    def apply(self, bindings: dict) -> BufferRef:
        return dataclasses.replace(bindings["node"], space=AddrSpace.GLOBAL)


class TexturePromoteRule(_BufferRule):
    """Route every load of a read-only global buffer through tex1Dfetch.

    CUDA-only — the programming-model asymmetry behind Fig. 4/5.
    """

    name = "texify"
    via_texture = True

    def describe(self) -> str:
        return "texify"

    def _legal(self, buf: BufferRef, ctx: MatchContext) -> bool:
        return (
            ctx.dialect.allows_texture
            and buf.space is AddrSpace.GLOBAL
            and buf.name in ctx.loaded
            and buf.name not in ctx.stored
            and buf.name not in ctx.tex_loaded
        )

    def apply(self, bindings: dict) -> BufferRef:
        return bindings["node"]


class TextureDemoteRule(_BufferRule):
    """Texture path → plain global loads; the inverse of ``texify``."""

    name = "untex"
    via_texture = False

    def describe(self) -> str:
        return "untex"

    def _legal(self, buf: BufferRef, ctx: MatchContext) -> bool:
        return buf.name in ctx.tex_loaded

    def apply(self, bindings: dict) -> BufferRef:
        return bindings["node"]


#: rule name -> factory taking the (string) arg from a variant token.
#: Factories for arg-less rules reject a non-empty arg.
def _noarg(cls):
    def make(arg: str):
        if arg:
            raise RewriteError(f"rule {cls.name!r} takes no argument, got {arg!r}")
        return cls()

    return make


CATALOG = {
    "unroll": UnrollRule,
    "pragma": PragmaUnrollRule,
    "tile": TileRule,
    "vec": VectorizeRule,
    "cse": _noarg(CSERule),
    "promote": _noarg(PromoteConstRule),
    "demote": _noarg(DemoteConstRule),
    "texify": _noarg(TexturePromoteRule),
    "untex": _noarg(TextureDemoteRule),
}


def make_rule(name: str, arg: str = "") -> Rule:
    """Instantiate a catalog rule from its token spelling."""
    try:
        factory = CATALOG[name]
    except KeyError:
        raise RewriteError(f"unknown rewrite rule {name!r}") from None
    return factory(arg)
