"""Rewrite-rule kernel-variant generation over the kernel IR.

The paper's CUDA-vs-OpenCL gaps trace back to hand-applied kernel
optimizations; this package derives those optimizations mechanically
from a small catalog of semantics-preserving rules (after Steuwer et
al., arXiv:1502.02389), and — because every kernel here runs on the
simulator — preservation is *tested* bit-for-bit rather than argued.

Layout:

- :mod:`.core` — ``Rule`` protocol, match contexts, the application
  engine, normalization, structural keys.
- :mod:`.rules` — the concrete catalog (unroll, pragma, tile, vec,
  cse, promote/demote, texify/untex).
- :mod:`.plan` — variant tokens (``kernel!rule:site:arg+...``) and the
  ``VariantPlan`` enumerator.

The differential harness asserting every variant is byte-identical to
its baseline lives in :mod:`repro.exec.variants` — it needs the sweep
executor, cache, and ABT preflight, which this layer must not import.
"""
from .core import (
    MatchContext,
    RewriteError,
    Rule,
    apply_binding,
    find_site,
    kernel_key,
    normalize,
    sites,
    stmt_key,
)
from .plan import (
    RuleApp,
    Variant,
    VariantPlan,
    apply_apps,
    apply_variant,
    parse_variant,
)
from .rules import CATALOG, make_rule

__all__ = [
    "Rule",
    "RewriteError",
    "MatchContext",
    "sites",
    "find_site",
    "apply_binding",
    "normalize",
    "stmt_key",
    "kernel_key",
    "RuleApp",
    "Variant",
    "VariantPlan",
    "apply_apps",
    "apply_variant",
    "parse_variant",
    "CATALOG",
    "make_rule",
]
