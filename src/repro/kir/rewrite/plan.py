"""Variant plans: enumerate legal rule sequences and name them stably.

A *variant* is a kernel name plus an ordered list of rule applications,
spelled as a compact token::

    sobel!promote:filt
    fdtd!pragma:z:9
    reduce!unroll:r:4+cse

Grammar: ``<kernel> "!" <app> ("+" <app>)*`` where an app is
``<rule> ":" <site> [":" <arg>]`` — rule from the catalog, site the
stable label the rule matched (loop variable, buffer name, or ``body``),
arg the rule's parameter (unroll factor, tile size, vector width).

The token is the *only* thing that travels: it rides in a work unit's
options tuple, so the exec-layer digest covers it (and the rewritten
sources it produces) with no new machinery, and any variant can be
reconstructed from its token alone via :func:`apply_variant`.
"""
from __future__ import annotations

import dataclasses
import re
from typing import Iterable, Optional, Sequence

from ..stmt import Kernel
from ..validate import KernelValidationError
from ..visit import walk_stmts
from .core import MatchContext, RewriteError, apply_binding, find_site, normalize, sites
from .rules import CATALOG, make_rule

__all__ = [
    "RuleApp",
    "Variant",
    "parse_variant",
    "apply_apps",
    "apply_variant",
    "VariantPlan",
]

_IDENT = r"[A-Za-z_][A-Za-z0-9_.]*"
_APP_RE = re.compile(rf"^({_IDENT}):({_IDENT})(?::([A-Za-z0-9]+))?$")


@dataclasses.dataclass(frozen=True, order=True)
class RuleApp:
    """One rule application: rule name, site label, optional argument."""

    rule: str
    site: str
    arg: str = ""

    @property
    def token(self) -> str:
        return f"{self.rule}:{self.site}:{self.arg}" if self.arg else f"{self.rule}:{self.site}"

    @classmethod
    def parse(cls, tok: str) -> "RuleApp":
        m = _APP_RE.match(tok)
        if not m:
            raise RewriteError(f"malformed rule application {tok!r}")
        rule, site, arg = m.group(1), m.group(2), m.group(3) or ""
        if rule not in CATALOG:
            raise RewriteError(f"unknown rewrite rule {rule!r} in {tok!r}")
        return cls(rule, site, arg)


@dataclasses.dataclass(frozen=True)
class Variant:
    """A named kernel plus the rule sequence that derives it."""

    kernel: str
    apps: tuple

    @property
    def token(self) -> str:
        return f"{self.kernel}!" + "+".join(a.token for a in self.apps)

    def describe(self) -> str:
        return self.token


def parse_variant(token: str) -> Variant:
    """Inverse of :attr:`Variant.token`."""
    kernel, sep, rest = token.partition("!")
    if not sep or not kernel or not rest:
        raise RewriteError(f"malformed variant token {token!r}")
    return Variant(kernel, tuple(RuleApp.parse(t) for t in rest.split("+")))


def apply_apps(kernel: Kernel, apps: Iterable[RuleApp]) -> Kernel:
    """Apply a rule sequence in order, re-validating after each step."""
    k = kernel
    for app in apps:
        rule = make_rule(app.rule, app.arg)
        bindings = find_site(rule, k, app.site)
        k = apply_binding(k, rule, bindings)
    return normalize(k)


def apply_variant(kernels: Sequence[Kernel], token: str) -> list:
    """Rewrite the named kernel within a kernel list; others pass through."""
    variant = parse_variant(token)
    out, hit = [], False
    for k in kernels:
        if k.name == variant.kernel:
            out.append(apply_apps(k, variant.apps))
            hit = True
        else:
            out.append(k)
    if not hit:
        raise RewriteError(
            f"variant {token!r} names kernel {variant.kernel!r}, "
            f"not in {[k.name for k in kernels]}"
        )
    return out


# ---------------------------------------------------------------------------
# enumeration
# ---------------------------------------------------------------------------

#: address-space rules compose freely with one loop/expression rule —
#: they touch disjoint parts of the kernel.
_SPACE_RULES = ("promote", "demote", "texify", "untex")
_LOOP_RULES = ("unroll", "pragma", "tile", "vec", "cse")


class VariantPlan:
    """Enumerate legal single- and two-rule variants of a kernel set.

    The enumeration is deterministic (parameter order, then body
    pre-order, then fixed factor order) so variant tokens — and hence
    work-unit digests — are stable across runs.  ``limit`` caps the
    total per kernel; when the cap bites, depth-1 variants win over
    compositions.
    """

    def __init__(
        self,
        kernels: Sequence[Kernel],
        unroll_factors: Sequence = (2, 4, 8),
        tile_factors: Sequence = (2, 4),
        vec_widths: Sequence = (2, 4),
        full_unroll_budget: int = 128,
        compose: bool = True,
        limit: int = 32,
    ):
        self.kernels = list(kernels)
        self.unroll_factors = list(unroll_factors)
        self.tile_factors = list(tile_factors)
        self.vec_widths = list(vec_widths)
        self.full_unroll_budget = full_unroll_budget
        self.compose = compose
        self.limit = limit

    def _rule_specs(self):
        """(rule name, arg) pairs in canonical order."""
        specs = [("promote", ""), ("demote", ""), ("texify", ""), ("untex", "")]
        for f in self.unroll_factors:
            specs.append(("unroll", str(f)))
        specs.append(("unroll", "full"))
        for f in self.unroll_factors:
            specs.append(("pragma", str(f)))
        specs.append(("pragma", "full"))
        for t in self.tile_factors:
            specs.append(("tile", str(t)))
        for w in self.vec_widths:
            specs.append(("vec", str(w)))
        specs.append(("cse", ""))
        return specs

    def _full_unroll_ok(self, kernel: Kernel, bindings: dict) -> bool:
        node = bindings["node"]
        trip = bindings.get("trip")
        if trip is None:
            return True
        body = sum(1 for _ in walk_stmts(node.body))
        return trip * max(body, 1) <= self.full_unroll_budget

    def _apps_for(self, kernel: Kernel) -> list:
        ctx = MatchContext.of(kernel)
        apps = []
        for name, arg in self._rule_specs():
            rule = make_rule(name, arg)
            for b in sites(rule, kernel, ctx):
                if name == "unroll" and arg == "full":
                    if not self._full_unroll_ok(kernel, b):
                        continue
                apps.append(RuleApp(name, b["site"], arg))
        return apps

    def variants_for(self, kernel: Kernel) -> list:
        singles = self._apps_for(kernel)
        out = [Variant(kernel.name, (app,)) for app in singles]
        if self.compose:
            space = [a for a in singles if a.rule in _SPACE_RULES]
            loops = [a for a in singles if a.rule in _LOOP_RULES]
            for a in space:
                for b in loops:
                    if len(out) >= self.limit:
                        break
                    v = Variant(kernel.name, (a, b))
                    try:
                        apply_apps(kernel, v.apps)
                    except (RewriteError, KernelValidationError):
                        continue  # composition turned out illegal; skip it
                    out.append(v)
        return out[: self.limit]

    def variants(self) -> list:
        """All variants across the kernel set, in kernel order."""
        out = []
        for k in self.kernels:
            out.extend(self.variants_for(k))
        return out
