"""Rule engine over the kernel IR.

A :class:`Rule` is one provably-semantics-preserving transformation
(Steuwer et al., arXiv:1502.02389, applied to this IR): it *matches* a
node — a statement, a buffer parameter, or the kernel itself — under
legality conditions, producing a bindings dict, and *applies* the
bindings to produce the replacement node.  The engine
(:func:`apply_binding`) splices the replacement into a fresh kernel and
re-validates, so every rewritten kernel is a well-formed kernel by
construction; preservation itself is checked bit-for-bit by the
differential harness rather than assumed.

Sites are addressed by stable labels (a loop variable, a buffer name,
or ``body`` for whole-kernel rules), which is what lets a rule sequence
round-trip through the compact variant tokens of
:mod:`repro.kir.rewrite.plan` and hence through work-unit options and
the exec cache digest.
"""
from __future__ import annotations

import dataclasses
from typing import Optional

from ..dialect import CUDA, Dialect, OPENCL
from ..expr import BufferRef, Const, Expr, Load, Select, SpecialReg, Var
from ..stmt import (
    Assign,
    Barrier,
    For,
    If,
    Kernel,
    Let,
    ScalarParam,
    Stmt,
    Store,
    UNROLL_FULL,
    While,
)
from ..transform import FreshNames, const_trip
from ..validate import validate
from ..visit import map_stmt_exprs, map_stmts, stmt_exprs, walk_exprs, walk_stmts

__all__ = [
    "Rule",
    "RewriteError",
    "MatchContext",
    "sites",
    "find_site",
    "apply_binding",
    "normalize",
    "stmt_key",
    "kernel_key",
]


class RewriteError(ValueError):
    """A rule application could not be performed legally."""


@dataclasses.dataclass
class MatchContext:
    """Kernel-level facts rules consult for their legality conditions."""

    kernel: Kernel
    dialect: Dialect
    #: buffer names the kernel stores to (never legal to promote)
    stored: frozenset
    #: buffer names loaded anywhere / loaded via the texture path
    loaded: frozenset
    tex_loaded: frozenset
    _fresh: Optional[FreshNames] = None

    @classmethod
    def of(cls, kernel: Kernel) -> "MatchContext":
        dialect = {"cuda": CUDA, "opencl": OPENCL}[kernel.dialect]
        stored, loaded, tex = set(), set(), set()
        for s in walk_stmts(kernel.body):
            if isinstance(s, Store):
                stored.add(s.buf.name)
            for top in stmt_exprs(s):
                for e in walk_exprs(top):
                    if isinstance(e, Load):
                        loaded.add(e.buf.name)
                        if e.via_texture:
                            tex.add(e.buf.name)
        return cls(
            kernel=kernel,
            dialect=dialect,
            stored=frozenset(stored),
            loaded=frozenset(loaded),
            tex_loaded=frozenset(tex),
        )

    def fresh(self, stem: str) -> str:
        if self._fresh is None:
            self._fresh = FreshNames(self.kernel)
        return self._fresh.fresh(stem)


class Rule:
    """One rewrite rule: ``matches(node) -> bindings``, ``apply(bindings) -> node``.

    ``kind`` declares what the rule matches — ``"stmt"`` (statement
    sites, replacement may be a statement list), ``"buffer"`` (a
    pointer parameter; the engine rewrites every reference to it), or
    ``"kernel"`` (whole-kernel rewrites such as CSE).
    """

    name: str = "?"
    kind: str = "stmt"
    #: buffer rules: force the texture bit on rewritten loads
    #: (None = preserve each load's existing path)
    via_texture: Optional[bool] = None

    def matches(self, node, ctx: MatchContext) -> Optional[dict]:
        raise NotImplementedError

    def apply(self, bindings: dict):
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


def _site_nodes(rule: Rule, kernel: Kernel):
    if rule.kind == "kernel":
        return [kernel]
    if rule.kind == "buffer":
        return [p for p in kernel.params if isinstance(p, BufferRef)]
    return list(walk_stmts(kernel.body))


def sites(rule: Rule, kernel: Kernel, ctx: Optional[MatchContext] = None) -> list:
    """All bindings where ``rule`` legally applies, in deterministic order."""
    ctx = ctx or MatchContext.of(kernel)
    out = []
    for node in _site_nodes(rule, kernel):
        b = rule.matches(node, ctx)
        if b is not None:
            b.setdefault("node", node)
            b["ctx"] = ctx
            out.append(b)
    return out


def find_site(rule: Rule, kernel: Kernel, site: str) -> dict:
    """Resolve a site label back to bindings (used by variant tokens)."""
    for b in sites(rule, kernel):
        if b["site"] == site:
            return b
    raise RewriteError(
        f"rule {rule.describe()!r} has no site {site!r} in kernel "
        f"{kernel.name!r}"
    )


def _replace_stmt(kernel: Kernel, node: Stmt, replacement) -> list:
    hits = [0]

    def fn(s):
        if s is node:
            hits[0] += 1
            return replacement
        return s

    body = map_stmts(kernel.body, fn)
    if hits[0] != 1:
        raise RewriteError(
            f"statement site matched {hits[0]} times in kernel {kernel.name!r}"
        )
    return body


def _replace_buffer(kernel: Kernel, rule: Rule, old: BufferRef, new: BufferRef):
    def fix_expr(e: Expr) -> Expr:
        if isinstance(e, Load) and e.buf.name == old.name:
            via = rule.via_texture if rule.via_texture is not None else e.via_texture
            return Load(new, e.index, via)
        return e

    def fix_stmt(s):
        s = map_stmt_exprs(s, fix_expr)
        if isinstance(s, Store) and s.buf.name == old.name:
            s = Store(new, s.index, s.value)
        return s

    body = map_stmts(kernel.body, fix_stmt)
    params = [new if p.name == old.name else p for p in kernel.params]
    return params, body


def apply_binding(kernel: Kernel, rule: Rule, bindings: dict) -> Kernel:
    """Apply one matched rule and return the re-validated kernel."""
    params, shared = list(kernel.params), list(kernel.shared)
    if rule.kind == "kernel":
        new = rule.apply(bindings)
        if not isinstance(new, Kernel):
            raise RewriteError(f"kernel rule {rule.name!r} returned {type(new)}")
        validate(new)
        return new
    if rule.kind == "buffer":
        old = bindings["node"]
        newbuf = rule.apply(bindings)
        params, body = _replace_buffer(kernel, rule, old, newbuf)
    else:
        body = _replace_stmt(kernel, bindings["node"], rule.apply(bindings))
    new = dataclasses.replace(kernel, params=params, body=body, shared=shared)
    validate(new)
    return new


# ---------------------------------------------------------------------------
# normalization: the canonical form rewritten kernels are kept in
# ---------------------------------------------------------------------------


def _norm_body(body) -> tuple:
    out = []
    for s in body:
        if isinstance(s, If):
            then = _norm_body(s.then)
            orelse = _norm_body(s.orelse)
            if not then and not orelse:
                continue  # branch with no effect either way
            out.append(If(s.cond, then, orelse))
        elif isinstance(s, For):
            if const_trip(s) == 0:
                continue  # statically dead loop
            un = s.unroll
            if un is not None and un.factor != UNROLL_FULL and un.factor <= 1:
                un = None  # `#pragma unroll 1` is a no-op annotation
            out.append(For(s.var, s.start, s.stop, s.step, _norm_body(s.body), un))
        elif isinstance(s, While):
            out.append(While(s.cond, _norm_body(s.body)))
        else:
            out.append(s)
    return tuple(out)


def normalize(kernel: Kernel) -> Kernel:
    """Structural canonical form: tuple bodies, dead control flow and
    no-op unroll annotations dropped.  Idempotent by construction (the
    property suite holds it to that), and semantics-preserving — it
    removes only statements that could never execute an effect.
    """
    return dataclasses.replace(
        kernel,
        params=list(kernel.params),
        body=list(_norm_body(kernel.body)),
        shared=list(kernel.shared),
    )


# ---------------------------------------------------------------------------
# structural keys (hashable identity for tests and deduplication)
# ---------------------------------------------------------------------------


def _buf_key(b: BufferRef):
    return ("buf", b.name, b.elem, b.space, b.length)


def stmt_key(s: Stmt):
    t = type(s)
    if t is Let:
        return ("let", s.var.name, s.var.vtype, s.value.key())
    if t is Assign:
        return ("assign", s.var.name, s.value.key())
    if t is Store:
        return ("store", _buf_key(s.buf), s.index.key(), s.value.key())
    if t is Barrier:
        return ("barrier",)
    if t is If:
        return (
            "if",
            s.cond.key(),
            tuple(stmt_key(x) for x in s.then),
            tuple(stmt_key(x) for x in s.orelse),
        )
    if t is For:
        un = None if s.unroll is None else (s.unroll.factor, s.unroll.point)
        return (
            "for",
            s.var.name,
            s.var.vtype,
            s.start.key(),
            s.stop.key(),
            s.step.key(),
            tuple(stmt_key(x) for x in s.body),
            un,
        )
    if t is While:
        return ("while", s.cond.key(), tuple(stmt_key(x) for x in s.body))
    raise TypeError(f"no key for {s!r}")


def kernel_key(k: Kernel):
    params = tuple(
        _buf_key(p) if isinstance(p, BufferRef) else ("scalar", p.name, p.dtype)
        for p in k.params
    )
    return (
        k.name,
        k.dialect,
        params,
        tuple(_buf_key(b) for b in k.shared),
        tuple(stmt_key(s) for s in k.body),
    )
