"""Reference evaluator: run a kernel directly from the IR.

This interpreter is deliberately independent of the compiler and the PTX
simulator — it executes the *source* semantics, one thread per Python
generator, suspending at barriers so shared-memory cooperation works.
Tests cross-check ``compile → simulate`` results against this evaluator;
the two disagreeing means a compiler or simulator bug.

Throughput is irrelevant here (it is a test oracle); keep problem sizes
small when using it.
"""
from __future__ import annotations

import math
from typing import Iterator, Mapping

import numpy as np

from .expr import BinOp, BufferRef, Const, Expr, Load, Select, SpecialReg, UnOp, Var
from .stmt import Assign, Barrier, For, If, Kernel, Let, ScalarParam, Store, While
from .types import Scalar, np_dtype

__all__ = ["eval_kernel"]

_MAXLOOP = 10_000_000


_INT_WRAP = {
    Scalar.U32: (32, False),
    Scalar.S32: (32, True),
    Scalar.U64: (64, False),
    Scalar.S64: (64, True),
}


def _to(v, t: Scalar):
    # Python-int intermediates (shifts, div) can exceed the target
    # width; wrap to two's complement like the device ALU does.
    w = _INT_WRAP.get(t)
    if w is not None and isinstance(v, int):
        bits, signed = w
        v &= (1 << bits) - 1
        if signed and v >> (bits - 1):
            v -= 1 << bits
    return np_dtype(t)(v)


def _eval(e: Expr, env: dict, bufs: Mapping[str, np.ndarray]):
    if isinstance(e, Const):
        return _to(e.value, e.ctype)
    if isinstance(e, Var):
        return env[e.name]
    if isinstance(e, SpecialReg):
        return env[e.reg.value]
    if isinstance(e, Load):
        idx = int(_eval(e.index, env, bufs))
        return bufs[e.buf.name][idx]
    if isinstance(e, BinOp):
        a = _eval(e.a, env, bufs)
        b = _eval(e.b, env, bufs)
        op = e.op
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            if op == "add":
                return _to(a + b, e.dtype)
            if op == "sub":
                return _to(a - b, e.dtype)
            if op == "mul":
                return _to(a * b, e.dtype)
            if op == "div":
                if e.dtype in (Scalar.F32, Scalar.F64):
                    return _to(a / b, e.dtype)
                return _to(int(a) // int(b) if b else 0, e.dtype)
            if op == "rem":
                return _to(int(a) % int(b) if b else 0, e.dtype)
            if op == "min":
                return _to(min(a, b), e.dtype)
            if op == "max":
                return _to(max(a, b), e.dtype)
            if op == "and":
                return _to(int(a) & int(b), e.dtype)
            if op == "or":
                return _to(int(a) | int(b), e.dtype)
            if op == "xor":
                return _to(int(a) ^ int(b), e.dtype)
            if op == "shl":
                m = 63 if e.dtype in (Scalar.S64, Scalar.U64) else 31
                return _to(int(a) << (int(b) & m), e.dtype)
            if op == "shr":
                m = 63 if e.dtype in (Scalar.S64, Scalar.U64) else 31
                return _to(int(a) >> (int(b) & m), e.dtype)
            if op == "lt":
                return bool(a < b)
            if op == "le":
                return bool(a <= b)
            if op == "gt":
                return bool(a > b)
            if op == "ge":
                return bool(a >= b)
            if op == "eq":
                return bool(a == b)
            if op == "ne":
                return bool(a != b)
            if op == "land":
                return bool(a) and bool(b)
            if op == "lor":
                return bool(a) or bool(b)
        raise NotImplementedError(op)
    if isinstance(e, UnOp):
        a = _eval(e.a, env, bufs)
        op = e.op
        with np.errstate(over="ignore", invalid="ignore"):
            if op == "neg":
                return _to(-a, e.dtype)
            if op == "not":
                if e.dtype is Scalar.PRED:
                    # logical not — bitwise ~True is -2, which is truthy
                    return not bool(a)
                return _to(~int(a), e.dtype)
            if op == "abs":
                return _to(abs(a), e.dtype)
            if op == "sqrt":
                # sqrt(negative) is NaN, matching the simulator's SFU
                return _to(
                    math.sqrt(a) if a >= 0 else float("nan"), e.dtype
                )
            if op == "rsqrt":
                if a > 0:
                    return _to(1.0 / math.sqrt(a), e.dtype)
                return _to(np.inf if a == 0 else float("nan"), e.dtype)
            if op == "sin":
                return _to(math.sin(a), e.dtype)
            if op == "cos":
                return _to(math.cos(a), e.dtype)
            if op == "exp":
                try:
                    return _to(math.exp(a), e.dtype)
                except OverflowError:
                    return _to(np.inf, e.dtype)
            if op == "log":
                if a > 0:
                    return _to(math.log(a), e.dtype)
                return _to(-np.inf if a == 0 else float("nan"), e.dtype)
            if op == "floor":
                return _to(math.floor(a), e.dtype)
            if op == "f2i":
                return _to(int(a), Scalar.S32)
            if op == "f2u":
                return _to(max(int(a), 0), Scalar.U32)
            if op in ("i2f", "u2f"):
                return _to(float(a), Scalar.F32)
            if op == "widen":
                return _to(int(a), Scalar.S64)
        raise NotImplementedError(op)
    if isinstance(e, Select):
        return (
            _eval(e.a, env, bufs)
            if _eval(e.pred, env, bufs)
            else _eval(e.b, env, bufs)
        )
    raise TypeError(f"cannot evaluate {e!r}")


def _run(body, env, bufs) -> Iterator[None]:
    """Execute statements for one thread; yields at barriers."""
    for s in body:
        if isinstance(s, Let) or isinstance(s, Assign):
            env[s.var.name] = _to(_eval(s.value, env, bufs), s.var.dtype)
        elif isinstance(s, Store):
            idx = int(_eval(s.index, env, bufs))
            buf = bufs[s.buf.name]
            buf[idx] = _eval(s.value, env, bufs)
        elif isinstance(s, Barrier):
            yield
        elif isinstance(s, If):
            branch = s.then if _eval(s.cond, env, bufs) else s.orelse
            yield from _run(branch, env, bufs)
        elif isinstance(s, For):
            env[s.var.name] = _to(_eval(s.start, env, bufs), s.var.dtype)
            guard = 0
            while env[s.var.name] < _eval(s.stop, env, bufs):
                yield from _run(s.body, env, bufs)
                env[s.var.name] = _to(
                    env[s.var.name] + _eval(s.step, env, bufs), s.var.dtype
                )
                guard += 1
                if guard > _MAXLOOP:  # pragma: no cover - safety net
                    raise RuntimeError("runaway loop in reference evaluator")
        elif isinstance(s, While):
            guard = 0
            while _eval(s.cond, env, bufs):
                yield from _run(s.body, env, bufs)
                guard += 1
                if guard > _MAXLOOP:  # pragma: no cover
                    raise RuntimeError("runaway loop in reference evaluator")
        else:  # pragma: no cover - exhaustive over Stmt
            raise TypeError(f"cannot execute {s!r}")


def eval_kernel(
    kernel: Kernel,
    grid: tuple[int, int, int] | int,
    block: tuple[int, int, int] | int,
    args: Mapping[str, object],
) -> None:
    """Run ``kernel`` over the NDRange, mutating the numpy arrays in ``args``.

    ``args`` maps parameter names to numpy arrays (buffers) or Python
    scalars (by-value parameters).  Arrays are modified in place.
    """
    if isinstance(grid, int):
        grid = (grid,)
    if isinstance(block, int):
        block = (block,)
    grid = tuple(grid) + (1,) * (3 - len(grid))
    block = tuple(block) + (1,) * (3 - len(block))

    bufs: dict[str, np.ndarray] = {}
    base_env: dict = {}
    for p in kernel.params:
        if isinstance(p, ScalarParam):
            base_env[p.name] = _to(args[p.name], p.dtype)
        else:
            arr = args[p.name]
            if not isinstance(arr, np.ndarray):
                raise TypeError(f"buffer argument {p.name!r} must be ndarray")
            bufs[p.name] = arr.reshape(-1)

    geom = {
        "ntid.x": _to(block[0], Scalar.U32),
        "ntid.y": _to(block[1], Scalar.U32),
        "ntid.z": _to(block[2], Scalar.U32),
        "nctaid.x": _to(grid[0], Scalar.U32),
        "nctaid.y": _to(grid[1], Scalar.U32),
        "nctaid.z": _to(grid[2], Scalar.U32),
    }

    for bz in range(grid[2]):
        for by in range(grid[1]):
            for bx in range(grid[0]):
                # fresh shared memory for every block
                block_bufs = dict(bufs)
                for sb in kernel.shared:
                    block_bufs[sb.name] = np.zeros(
                        sb.length, dtype=np_dtype(sb.elem)
                    )
                threads = []
                for tz in range(block[2]):
                    for ty in range(block[1]):
                        for tx in range(block[0]):
                            env = dict(base_env)
                            env.update(geom)
                            env.update(
                                {
                                    "tid.x": _to(tx, Scalar.U32),
                                    "tid.y": _to(ty, Scalar.U32),
                                    "tid.z": _to(tz, Scalar.U32),
                                    "ctaid.x": _to(bx, Scalar.U32),
                                    "ctaid.y": _to(by, Scalar.U32),
                                    "ctaid.z": _to(bz, Scalar.U32),
                                }
                            )
                            threads.append(_run(kernel.body, env, block_bufs))
                # co-routine style lockstep between barriers
                live = list(threads)
                while live:
                    nxt = []
                    for t in live:
                        try:
                            next(t)
                            nxt.append(t)
                        except StopIteration:
                            pass
                    if nxt and len(nxt) != len(live):
                        raise RuntimeError(
                            f"kernel {kernel.name!r}: divergent barrier "
                            "(not all threads reached it)"
                        )
                    live = nxt
