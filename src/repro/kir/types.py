"""Scalar types and address spaces of the kernel IR.

The type system mirrors what both CUDA C and OpenCL C expose to GPU
kernels: 32/64-bit integers, single/double floats, and a 1-bit predicate
type that only exists as the result of comparisons.  Address spaces follow
the PTX state-space taxonomy (Table I of the paper maps the CUDA and
OpenCL spellings onto each other; we use the PTX names internally).
"""
from __future__ import annotations

import enum

import numpy as np

__all__ = ["Scalar", "AddrSpace", "np_dtype", "sizeof", "is_integer", "is_float"]


class Scalar(enum.Enum):
    """A scalar value type carried by every IR expression."""

    U32 = "u32"
    S32 = "s32"
    U64 = "u64"
    S64 = "s64"
    F32 = "f32"
    F64 = "f64"
    PRED = "pred"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scalar.{self.name}"


_NP = {
    Scalar.U32: np.uint32,
    Scalar.S32: np.int32,
    Scalar.U64: np.uint64,
    Scalar.S64: np.int64,
    Scalar.F32: np.float32,
    Scalar.F64: np.float64,
    Scalar.PRED: np.bool_,
}

_SIZE = {
    Scalar.U32: 4,
    Scalar.S32: 4,
    Scalar.U64: 8,
    Scalar.S64: 8,
    Scalar.F32: 4,
    Scalar.F64: 8,
    Scalar.PRED: 1,
}

_INT = {Scalar.U32, Scalar.S32, Scalar.U64, Scalar.S64}
_FLOAT = {Scalar.F32, Scalar.F64}

# Enum hashing goes through a Python-level __hash__, and the interpreter
# resolves dtypes millions of times per sweep — pin the lookups onto the
# members themselves so the hot accessors are a plain attribute read.
for _m in Scalar:
    _m._np = _NP[_m]
    _m._size = _SIZE[_m]
    _m._is_int = _m in _INT
    _m._is_float = _m in _FLOAT


def np_dtype(t: Scalar) -> type:
    """The numpy dtype used to carry lane values of scalar type ``t``."""
    return t._np


def sizeof(t: Scalar) -> int:
    """Size in bytes of one element of ``t`` in device memory."""
    return t._size


def is_integer(t: Scalar) -> bool:
    return t._is_int


def is_float(t: Scalar) -> bool:
    return t._is_float


class AddrSpace(enum.Enum):
    """PTX state spaces (CUDA / OpenCL spellings in comments).

    ========  ==================  =====================
    space     CUDA                OpenCL
    ========  ==================  =====================
    GLOBAL    global memory       global memory
    CONST     constant memory     constant memory
    SHARED    shared memory       local memory
    LOCAL     local memory        private memory
    TEXTURE   texture memory      (images; unused here)
    PARAM     kernel parameters   kernel parameters
    ========  ==================  =====================
    """

    GLOBAL = "global"
    CONST = "const"
    SHARED = "shared"
    LOCAL = "local"
    TEXTURE = "tex"
    PARAM = "param"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AddrSpace.{self.name}"
