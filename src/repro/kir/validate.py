"""Static validation of kernels before compilation.

Catches the classes of mistakes a C front-end would reject: use of
undeclared variables, assignment to loop induction variables, stores into
read-only spaces, texture fetches outside the CUDA dialect, and barriers
inside divergent control flow (which both languages declare undefined).
"""
from __future__ import annotations

from .dialect import CUDA, OPENCL
from .expr import BufferRef, Const, Expr, Load, SpecialReg, Var
from .stmt import Assign, Barrier, For, If, Kernel, Let, ScalarParam, Stmt, Store, While
from .types import AddrSpace
from .visit import stmt_exprs, walk_exprs

__all__ = ["validate", "KernelValidationError"]


class KernelValidationError(ValueError):
    """A kernel failed static validation."""


def _err(kernel: Kernel, msg: str) -> KernelValidationError:
    return KernelValidationError(f"kernel {kernel.name!r}: {msg}")


def validate(kernel: Kernel) -> None:
    dialect = {"cuda": CUDA, "opencl": OPENCL}.get(kernel.dialect)
    if dialect is None:
        raise _err(kernel, f"unknown dialect {kernel.dialect!r}")

    declared_bufs = {b.name for b in kernel.buffers()} | {
        b.name for b in kernel.shared
    }
    readonly = {
        b.name for b in kernel.buffers() if b.space is AddrSpace.CONST
    }
    scope = {p.name for p in kernel.scalars()}

    # address spaces are positional: parameters are pointers the host
    # passes (GLOBAL/CONST), ``kernel.shared`` is on-chip scratch.  A
    # hand-built (or rewritten) AST can put a space where no C source
    # could, which the compilers would then silently mis-lower.
    for b in kernel.buffers():
        if b.space not in (AddrSpace.GLOBAL, AddrSpace.CONST):
            raise _err(
                kernel,
                f"buffer parameter {b.name!r} must be GLOBAL or CONST, "
                f"not {b.space.name}",
            )
    for b in kernel.shared:
        if b.space is not AddrSpace.SHARED:
            raise _err(
                kernel,
                f"shared declaration {b.name!r} has space {b.space.name}",
            )
        if b.length is None or b.length <= 0:
            raise _err(kernel, f"shared buffer {b.name!r} needs a static length")

    def check_expr(e: Expr, scope: set[str]) -> None:
        for node in walk_exprs(e):
            if isinstance(node, Var) and node.name not in scope:
                raise _err(kernel, f"use of undeclared variable {node.name!r}")
            if isinstance(node, Load):
                if node.buf.name not in declared_bufs:
                    raise _err(kernel, f"load from undeclared buffer {node.buf.name!r}")
                if node.via_texture and not dialect.allows_texture:
                    raise _err(
                        kernel,
                        f"texture fetch from {node.buf.name!r} is not available "
                        f"in the {dialect.name} dialect",
                    )
                if node.via_texture and node.buf.space is not AddrSpace.GLOBAL:
                    raise _err(kernel, "texture fetches bind global buffers only")

    def check_block(
        body, scope: set[str], divergent: bool, loop_vars: frozenset = frozenset()
    ) -> set[str]:
        scope = set(scope)
        for s in body:
            for e in stmt_exprs(s):
                check_expr(e, scope)
            if isinstance(s, Let):
                if s.var.name in scope:
                    raise _err(kernel, f"redeclaration of {s.var.name!r}")
                scope.add(s.var.name)
            elif isinstance(s, Assign):
                if s.var.name not in scope:
                    raise _err(kernel, f"assignment to undeclared {s.var.name!r}")
                if s.var.name in loop_vars:
                    raise _err(
                        kernel,
                        f"assignment to loop induction variable {s.var.name!r}",
                    )
            elif isinstance(s, Store):
                if s.buf.name not in declared_bufs:
                    raise _err(kernel, f"store to undeclared buffer {s.buf.name!r}")
                if s.buf.name in readonly:
                    raise _err(kernel, f"store to read-only buffer {s.buf.name!r}")
                check_expr(s.index, scope)
                check_expr(s.value, scope)
            elif isinstance(s, If):
                check_block(s.then, scope, True, loop_vars)
                check_block(s.orelse, scope, True, loop_vars)
            elif isinstance(s, For):
                if s.var.name in scope:
                    raise _err(kernel, f"loop variable {s.var.name!r} shadows")
                if isinstance(s.step, Const) and s.step.value <= 0:
                    # the For semantics are `while var < stop: ...; var += step`;
                    # a non-positive constant step can never terminate
                    raise _err(
                        kernel,
                        f"loop {s.var.name!r} has non-positive constant "
                        f"step {s.step.value}",
                    )
                inner = scope | {s.var.name}
                check_block(s.body, inner, divergent, loop_vars | {s.var.name})
            elif isinstance(s, While):
                check_block(s.body, scope, True, loop_vars)
            elif isinstance(s, Barrier):
                if divergent:
                    raise _err(
                        kernel,
                        "barrier inside divergent control flow "
                        "(undefined in both CUDA and OpenCL)",
                    )
        return scope

    check_block(kernel.body, scope, divergent=False)
