"""Language dialects: the CUDA and OpenCL spellings of one IR.

Table I of the paper maps the two vocabularies onto each other (global/
constant/shared-local/private memory, thread/work-item, block/work-group).
A :class:`Dialect` carries that mapping plus the feature gates that differ
between the languages — notably that texture fetches (``tex1Dfetch``) are
a CUDA-only facility, which is exactly the programming-model difference
behind Fig. 4/5 of the paper.
"""
from __future__ import annotations

import dataclasses

from .types import AddrSpace

__all__ = ["Dialect", "CUDA", "OPENCL"]


@dataclasses.dataclass(frozen=True)
class Dialect:
    name: str
    #: language spelling of each address space, for the pretty-printer
    space_names: dict
    #: whether ``Load(via_texture=True)`` is allowed
    allows_texture: bool
    #: spelling of the work-item builtins, for the pretty-printer
    tid_spelling: str
    ctaid_spelling: str
    ntid_spelling: str
    nctaid_spelling: str
    barrier_spelling: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


CUDA = Dialect(
    name="cuda",
    space_names={
        AddrSpace.GLOBAL: "",
        AddrSpace.CONST: "__constant__",
        AddrSpace.SHARED: "__shared__",
        AddrSpace.LOCAL: "",
        AddrSpace.TEXTURE: "texture",
    },
    allows_texture=True,
    tid_spelling="threadIdx",
    ctaid_spelling="blockIdx",
    ntid_spelling="blockDim",
    nctaid_spelling="gridDim",
    barrier_spelling="__syncthreads()",
)

OPENCL = Dialect(
    name="opencl",
    space_names={
        AddrSpace.GLOBAL: "__global",
        AddrSpace.CONST: "__constant",
        AddrSpace.SHARED: "__local",
        AddrSpace.LOCAL: "__private",
        AddrSpace.TEXTURE: "image1d_t",
    },
    allows_texture=False,
    tid_spelling="get_local_id",
    ctaid_spelling="get_group_id",
    ntid_spelling="get_local_size",
    nctaid_spelling="get_num_groups",
    barrier_spelling="barrier(CLK_LOCAL_MEM_FENCE)",
)
