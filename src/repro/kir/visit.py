"""Tree walkers shared by validation, compilers and pretty-printing."""
from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .expr import BinOp, Expr, Load, Select, UnOp
from .stmt import Assign, Barrier, For, If, Let, Stmt, Store, While

__all__ = ["walk_exprs", "walk_stmts", "any_expr", "sub_exprs", "map_expr"]


def sub_exprs(e: Expr) -> Iterator[Expr]:
    """Direct children of an expression node."""
    if isinstance(e, BinOp):
        yield e.a
        yield e.b
    elif isinstance(e, UnOp):
        yield e.a
    elif isinstance(e, Select):
        yield e.pred
        yield e.a
        yield e.b
    elif isinstance(e, Load):
        yield e.index


def walk_exprs(e: Expr) -> Iterator[Expr]:
    """Pre-order walk of an expression tree (including ``e`` itself)."""
    yield e
    for c in sub_exprs(e):
        yield from walk_exprs(c)


def stmt_exprs(s: Stmt) -> Iterator[Expr]:
    """Top-level expressions appearing directly in a statement."""
    if isinstance(s, Let) or isinstance(s, Assign):
        yield s.value
    elif isinstance(s, Store):
        yield s.index
        yield s.value
    elif isinstance(s, If):
        yield s.cond
    elif isinstance(s, For):
        yield s.start
        yield s.stop
        yield s.step
    elif isinstance(s, While):
        yield s.cond


def walk_stmts(body: Iterable[Stmt]) -> Iterator[Stmt]:
    """Pre-order walk of a statement tree."""
    for s in body:
        yield s
        if isinstance(s, If):
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.orelse)
        elif isinstance(s, (For, While)):
            yield from walk_stmts(s.body)


def any_expr(body: Iterable[Stmt], pred: Callable[[Expr], bool]) -> bool:
    """True if any expression anywhere under ``body`` satisfies ``pred``."""
    for s in walk_stmts(body):
        for top in stmt_exprs(s):
            for e in walk_exprs(top):
                if pred(e):
                    return True
    return False


def map_expr(e: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``e`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns its replacement (possibly the same node).
    """
    if isinstance(e, BinOp):
        e2: Expr = BinOp(e.op, map_expr(e.a, fn), map_expr(e.b, fn))
    elif isinstance(e, UnOp):
        e2 = UnOp(e.op, map_expr(e.a, fn))
    elif isinstance(e, Select):
        e2 = Select(map_expr(e.pred, fn), map_expr(e.a, fn), map_expr(e.b, fn))
    elif isinstance(e, Load):
        e2 = Load(e.buf, map_expr(e.index, fn), e.via_texture)
    else:
        e2 = e
    return fn(e2)
