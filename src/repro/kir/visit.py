"""Tree walkers shared by validation, compilers and pretty-printing.

The expression node classes are final frozen dataclasses, so the
walkers dispatch on exact type (``type(e) is BinOp``) instead of
``isinstance`` chains, and :func:`walk_exprs` runs on an explicit stack
rather than nested generators — these run millions of times per sweep
and the frame overhead dominated compile time.
"""
from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .expr import BinOp, Expr, Load, Select, UnOp
from .stmt import Assign, Barrier, For, If, Let, Stmt, Store, While

__all__ = [
    "walk_exprs",
    "walk_stmts",
    "any_expr",
    "sub_exprs",
    "map_expr",
    "map_stmts",
    "map_stmt_exprs",
]


def sub_exprs(e: Expr) -> tuple:
    """Direct children of an expression node."""
    t = type(e)
    if t is BinOp:
        return (e.a, e.b)
    if t is UnOp:
        return (e.a,)
    if t is Select:
        return (e.pred, e.a, e.b)
    if t is Load:
        return (e.index,)
    return ()


def walk_exprs(e: Expr) -> Iterator[Expr]:
    """Pre-order walk of an expression tree (including ``e`` itself)."""
    stack = [e]
    pop = stack.pop
    push = stack.append
    while stack:
        n = pop()
        yield n
        t = type(n)
        if t is BinOp:
            push(n.b)
            push(n.a)
        elif t is UnOp:
            push(n.a)
        elif t is Select:
            push(n.b)
            push(n.a)
            push(n.pred)
        elif t is Load:
            push(n.index)


def stmt_exprs(s: Stmt) -> tuple:
    """Top-level expressions appearing directly in a statement."""
    t = type(s)
    if t is Let or t is Assign:
        return (s.value,)
    if t is Store:
        return (s.index, s.value)
    if t is If:
        return (s.cond,)
    if t is For:
        return (s.start, s.stop, s.step)
    if t is While:
        return (s.cond,)
    return ()


def walk_stmts(body: Iterable[Stmt]) -> Iterator[Stmt]:
    """Pre-order walk of a statement tree."""
    for s in body:
        yield s
        t = type(s)
        if t is If:
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.orelse)
        elif t is For or t is While:
            yield from walk_stmts(s.body)


def any_expr(body: Iterable[Stmt], pred: Callable[[Expr], bool]) -> bool:
    """True if any expression anywhere under ``body`` satisfies ``pred``."""
    for s in walk_stmts(body):
        for top in stmt_exprs(s):
            for e in walk_exprs(top):
                if pred(e):
                    return True
    return False


def map_expr(e: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``e`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns its replacement (possibly the same node).  Untouched subtrees
    are shared, not copied — expression nodes are immutable, and skipping
    the rebuild avoids re-running dataclass validation on every node.
    """
    t = type(e)
    if t is BinOp:
        a = map_expr(e.a, fn)
        b = map_expr(e.b, fn)
        e2: Expr = e if (a is e.a and b is e.b) else BinOp(e.op, a, b)
    elif t is UnOp:
        a = map_expr(e.a, fn)
        e2 = e if a is e.a else UnOp(e.op, a)
    elif t is Select:
        p = map_expr(e.pred, fn)
        a = map_expr(e.a, fn)
        b = map_expr(e.b, fn)
        e2 = (
            e
            if (p is e.pred and a is e.a and b is e.b)
            else Select(p, a, b)
        )
    elif t is Load:
        idx = map_expr(e.index, fn)
        e2 = e if idx is e.index else Load(e.buf, idx, e.via_texture)
    else:
        e2 = e
    return fn(e2)


def map_stmts(body, fn):
    """Rebuild a statement sequence bottom-up, applying ``fn`` to each node.

    ``fn`` receives a statement whose nested bodies have already been
    rewritten and returns its replacement: the same statement (no
    change), a new statement, a list/tuple of statements (spliced in
    place — the mechanism rules use to expand a loop into its copies),
    or ``None`` to delete it.  Traversal is mutation-safe: the input
    tuples are never modified, untouched subtrees are shared.
    """
    # change detection must be by identity, never by ==: statement
    # dataclasses compare field-wise, and expression equality is not
    # structural, so a rewritten subtree can compare "equal" to the
    # original and the rebuild would be silently dropped
    def same(new: tuple, old: tuple) -> bool:
        return len(new) == len(old) and all(a is b for a, b in zip(new, old))

    out = []
    for s in body:
        t = type(s)
        if t is If:
            then = tuple(map_stmts(s.then, fn))
            orelse = tuple(map_stmts(s.orelse, fn))
            if not (same(then, s.then) and same(orelse, s.orelse)):
                s = If(s.cond, then, orelse)
        elif t is For:
            inner = tuple(map_stmts(s.body, fn))
            if not same(inner, s.body):
                s = For(s.var, s.start, s.stop, s.step, inner, s.unroll)
        elif t is While:
            inner = tuple(map_stmts(s.body, fn))
            if not same(inner, s.body):
                s = While(s.cond, inner)
        r = fn(s)
        if r is None:
            continue
        if isinstance(r, (list, tuple)):
            out.extend(r)
        else:
            out.append(r)
    return out


def map_stmt_exprs(s: Stmt, fn: Callable[[Expr], Expr]) -> Stmt:
    """Rebuild one statement with ``fn`` mapped over its *direct* exprs.

    Nested statement bodies are left alone (compose with
    :func:`map_stmts` for a deep rewrite); each direct expression runs
    through :func:`map_expr`, so ``fn`` sees every node bottom-up.
    """
    t = type(s)
    if t is Let:
        v = map_expr(s.value, fn)
        return s if v is s.value else Let(s.var, v)
    if t is Assign:
        v = map_expr(s.value, fn)
        return s if v is s.value else Assign(s.var, v)
    if t is Store:
        i = map_expr(s.index, fn)
        v = map_expr(s.value, fn)
        return s if (i is s.index and v is s.value) else Store(s.buf, i, v)
    if t is If:
        c = map_expr(s.cond, fn)
        return s if c is s.cond else If(c, s.then, s.orelse)
    if t is For:
        a = map_expr(s.start, fn)
        b = map_expr(s.stop, fn)
        c = map_expr(s.step, fn)
        if a is s.start and b is s.stop and c is s.step:
            return s
        return For(s.var, a, b, c, s.body, s.unroll)
    if t is While:
        c = map_expr(s.cond, fn)
        return s if c is s.cond else While(c, s.body)
    return s
