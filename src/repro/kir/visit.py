"""Tree walkers shared by validation, compilers and pretty-printing.

The expression node classes are final frozen dataclasses, so the
walkers dispatch on exact type (``type(e) is BinOp``) instead of
``isinstance`` chains, and :func:`walk_exprs` runs on an explicit stack
rather than nested generators — these run millions of times per sweep
and the frame overhead dominated compile time.
"""
from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .expr import BinOp, Expr, Load, Select, UnOp
from .stmt import Assign, Barrier, For, If, Let, Stmt, Store, While

__all__ = ["walk_exprs", "walk_stmts", "any_expr", "sub_exprs", "map_expr"]


def sub_exprs(e: Expr) -> tuple:
    """Direct children of an expression node."""
    t = type(e)
    if t is BinOp:
        return (e.a, e.b)
    if t is UnOp:
        return (e.a,)
    if t is Select:
        return (e.pred, e.a, e.b)
    if t is Load:
        return (e.index,)
    return ()


def walk_exprs(e: Expr) -> Iterator[Expr]:
    """Pre-order walk of an expression tree (including ``e`` itself)."""
    stack = [e]
    pop = stack.pop
    push = stack.append
    while stack:
        n = pop()
        yield n
        t = type(n)
        if t is BinOp:
            push(n.b)
            push(n.a)
        elif t is UnOp:
            push(n.a)
        elif t is Select:
            push(n.b)
            push(n.a)
            push(n.pred)
        elif t is Load:
            push(n.index)


def stmt_exprs(s: Stmt) -> tuple:
    """Top-level expressions appearing directly in a statement."""
    t = type(s)
    if t is Let or t is Assign:
        return (s.value,)
    if t is Store:
        return (s.index, s.value)
    if t is If:
        return (s.cond,)
    if t is For:
        return (s.start, s.stop, s.step)
    if t is While:
        return (s.cond,)
    return ()


def walk_stmts(body: Iterable[Stmt]) -> Iterator[Stmt]:
    """Pre-order walk of a statement tree."""
    for s in body:
        yield s
        t = type(s)
        if t is If:
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.orelse)
        elif t is For or t is While:
            yield from walk_stmts(s.body)


def any_expr(body: Iterable[Stmt], pred: Callable[[Expr], bool]) -> bool:
    """True if any expression anywhere under ``body`` satisfies ``pred``."""
    for s in walk_stmts(body):
        for top in stmt_exprs(s):
            for e in walk_exprs(top):
                if pred(e):
                    return True
    return False


def map_expr(e: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``e`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns its replacement (possibly the same node).  Untouched subtrees
    are shared, not copied — expression nodes are immutable, and skipping
    the rebuild avoids re-running dataclass validation on every node.
    """
    t = type(e)
    if t is BinOp:
        a = map_expr(e.a, fn)
        b = map_expr(e.b, fn)
        e2: Expr = e if (a is e.a and b is e.b) else BinOp(e.op, a, b)
    elif t is UnOp:
        a = map_expr(e.a, fn)
        e2 = e if a is e.a else UnOp(e.op, a)
    elif t is Select:
        p = map_expr(e.pred, fn)
        a = map_expr(e.a, fn)
        b = map_expr(e.b, fn)
        e2 = (
            e
            if (p is e.pred and a is e.a and b is e.b)
            else Select(p, a, b)
        )
    elif t is Load:
        idx = map_expr(e.index, fn)
        e2 = e if idx is e.index else Load(e.buf, idx, e.via_texture)
    else:
        e2 = e
    return fn(e2)
