"""Statement nodes and the kernel container of the kernel IR.

Control flow is *structured* (no goto): ``If``, ``For`` and ``While``
nest.  This mirrors what the paper's benchmark kernels look like and is
what lets the compilers annotate every PTX branch with its reconvergence
point (the simulator's SIMT stack relies on those annotations).
"""
from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Union

from .expr import BufferRef, Const, Expr, Var
from .types import AddrSpace, Scalar

__all__ = [
    "Stmt",
    "Let",
    "Assign",
    "Store",
    "If",
    "For",
    "While",
    "Barrier",
    "Unroll",
    "UNROLL_FULL",
    "ScalarParam",
    "Kernel",
]

#: Sentinel for ``#pragma unroll`` with no factor (full unroll).
UNROLL_FULL = -1


@dataclasses.dataclass(frozen=True)
class Unroll:
    """An unroll pragma attached to a ``For``.

    ``factor``: ``UNROLL_FULL`` for ``#pragma unroll``, or a positive
    partial factor for ``#pragma unroll N``.  ``point`` names the pragma
    site (the paper's FDTD discussion labels them "a" and "b") so
    experiments can add/remove individual pragmas.
    """

    factor: int = UNROLL_FULL
    point: str = ""


class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True)
class Let(Stmt):
    """Declare-and-initialize a new local variable."""

    var: Var
    value: Expr


@dataclasses.dataclass(frozen=True)
class Assign(Stmt):
    """Re-assign an existing local variable (it must be Let-bound)."""

    var: Var
    value: Expr


@dataclasses.dataclass(frozen=True)
class Store(Stmt):
    """``buf[index] = value`` into the buffer's address space."""

    buf: BufferRef
    index: Expr
    value: Expr


@dataclasses.dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()


@dataclasses.dataclass(frozen=True)
class For(Stmt):
    """``for (var = start; var < stop; var += step) body``.

    ``stop``/``step`` may be arbitrary expressions; unrolling requires
    them to be compile-time constants (as in CUDA/OpenCL practice).
    """

    var: Var
    start: Expr
    stop: Expr
    step: Expr
    body: tuple[Stmt, ...]
    unroll: Optional[Unroll] = None


@dataclasses.dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: tuple[Stmt, ...]


@dataclasses.dataclass(frozen=True)
class Barrier(Stmt):
    """``__syncthreads()`` / ``barrier(CLK_LOCAL_MEM_FENCE)``."""


@dataclasses.dataclass(frozen=True)
class ScalarParam:
    """A by-value kernel parameter."""

    name: str
    dtype: Scalar


Param = Union[ScalarParam, BufferRef]


@dataclasses.dataclass
class Kernel:
    """A complete device kernel.

    ``dialect`` records which language front-end the kernel was written
    for ("cuda" or "opencl"); the corresponding compiler must be used.
    ``shared`` lists statically-sized SHARED-space scratch buffers, and
    ``wg_hint`` is the work-group size the host intends to launch with
    (used by the register allocator's occupancy heuristics only).
    """

    name: str
    params: list[Param]
    body: list[Stmt]
    dialect: str = "cuda"
    shared: list[BufferRef] = dataclasses.field(default_factory=list)
    wg_hint: int = 256

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def buffers(self) -> list[BufferRef]:
        return [p for p in self.params if isinstance(p, BufferRef)]

    def scalars(self) -> list[ScalarParam]:
        return [p for p in self.params if isinstance(p, ScalarParam)]

    def shared_bytes(self) -> int:
        from .types import sizeof

        return sum((b.length or 0) * sizeof(b.elem) for b in self.shared)

    def uses_texture(self) -> bool:
        from .visit import any_expr

        return any_expr(
            self.body, lambda e: getattr(e, "via_texture", False) is True
        )


def block(stmts: Sequence[Stmt]) -> tuple[Stmt, ...]:
    """Normalize a statement sequence into the tuple form nodes store."""
    return tuple(stmts)
