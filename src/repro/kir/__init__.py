"""Kernel IR: the dialect-neutral language both front-ends compile.

Public surface:

* :class:`KernelBuilder` with the :data:`CUDA` / :data:`OPENCL` dialects;
* the expression/statement node types for pass authors;
* :func:`render` (pretty-print back to C-like source);
* :func:`eval_kernel` (reference evaluator used as a test oracle).
"""
from .builder import KernelBuilder
from .dialect import CUDA, Dialect, OPENCL
from .eval import eval_kernel
from .expr import (
    BinOp,
    BufferRef,
    Const,
    Expr,
    Load,
    Select,
    SpecialReg,
    SReg,
    UnOp,
    Var,
    as_expr,
)
from .pretty import render, render_expr
from .stmt import (
    Assign,
    Barrier,
    For,
    If,
    Kernel,
    Let,
    ScalarParam,
    Store,
    Unroll,
    UNROLL_FULL,
    While,
)
from .types import AddrSpace, Scalar, np_dtype, sizeof
from .validate import KernelValidationError, validate

__all__ = [
    "KernelBuilder",
    "CUDA",
    "OPENCL",
    "Dialect",
    "eval_kernel",
    "render",
    "render_expr",
    "validate",
    "KernelValidationError",
    "Kernel",
    "ScalarParam",
    "BufferRef",
    "Scalar",
    "AddrSpace",
    "np_dtype",
    "sizeof",
    "Expr",
    "Const",
    "Var",
    "SpecialReg",
    "SReg",
    "BinOp",
    "UnOp",
    "Select",
    "Load",
    "as_expr",
    "Let",
    "Assign",
    "Store",
    "If",
    "For",
    "While",
    "Barrier",
    "Unroll",
    "UNROLL_FULL",
]
