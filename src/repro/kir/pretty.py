"""Render kernels back to CUDA-C-like or OpenCL-C-like source text.

Used by documentation, error messages, and the "same implementation"
audits of the fair-comparison methodology (two kernels whose dialect-
neutral rendering matches are byte-for-byte the same algorithm).
"""
from __future__ import annotations

from .dialect import CUDA, Dialect, OPENCL
from .expr import BinOp, BufferRef, Const, Expr, Load, Select, SpecialReg, UnOp, Var
from .stmt import (
    Assign,
    Barrier,
    For,
    If,
    Kernel,
    Let,
    ScalarParam,
    Store,
    UNROLL_FULL,
    While,
)
from .types import AddrSpace, Scalar

__all__ = ["render", "render_expr"]

_CTYPE = {
    Scalar.U32: "unsigned int",
    Scalar.S32: "int",
    Scalar.U64: "unsigned long",
    Scalar.S64: "long",
    Scalar.F32: "float",
    Scalar.F64: "double",
    Scalar.PRED: "bool",
}

_BIN = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "rem": "%",
    "and": "&",
    "or": "|",
    "xor": "^",
    "shl": "<<",
    "shr": ">>",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
    "land": "&&",
    "lor": "||",
}


def _sreg(e: SpecialReg, d: Dialect) -> str:
    kind, axis = e.reg.value.split(".")
    idx = "xyz".index(axis)
    table = {
        "tid": d.tid_spelling,
        "ctaid": d.ctaid_spelling,
        "ntid": d.ntid_spelling,
        "nctaid": d.nctaid_spelling,
    }
    base = table[kind]
    if d is OPENCL:
        return f"{base}({idx})"
    return f"{base}.{axis}"


def render_expr(e: Expr, d: Dialect = CUDA) -> str:
    if isinstance(e, Const):
        if e.ctype is Scalar.F32:
            return f"{float(e.value)}f"
        return str(e.value)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, SpecialReg):
        return _sreg(e, d)
    if isinstance(e, BinOp):
        if e.op in ("min", "max"):
            return f"{e.op}({render_expr(e.a, d)}, {render_expr(e.b, d)})"
        return f"({render_expr(e.a, d)} {_BIN[e.op]} {render_expr(e.b, d)})"
    if isinstance(e, UnOp):
        fn = {
            "neg": "-",
            "not": "~",
            "f2i": "(int)",
            "i2f": "(float)",
            "u2f": "(float)",
            "f2u": "(unsigned)",
            "widen": "(long)",
        }.get(e.op)
        if fn is not None:
            return f"{fn}{render_expr(e.a, d)}"
        name = {"abs": "fabs"}.get(e.op, e.op)
        if d is OPENCL and e.op in ("sin", "cos", "exp", "log", "rsqrt", "sqrt"):
            name = f"native_{e.op}"
        elif d is CUDA and e.op in ("sin", "cos", "exp", "log"):
            name = f"__{e.op}f"
        return f"{name}({render_expr(e.a, d)})"
    if isinstance(e, Select):
        if d is OPENCL:
            return (
                f"select({render_expr(e.b, d)}, {render_expr(e.a, d)}, "
                f"{render_expr(e.pred, d)})"
            )
        return (
            f"({render_expr(e.pred, d)} ? {render_expr(e.a, d)} : "
            f"{render_expr(e.b, d)})"
        )
    if isinstance(e, Load):
        if e.via_texture:
            return f"tex1Dfetch(tex_{e.buf.name}, {render_expr(e.index, d)})"
        return f"{e.buf.name}[{render_expr(e.index, d)}]"
    raise TypeError(f"cannot render {e!r}")


def _param_decl(p, d: Dialect) -> str:
    if isinstance(p, ScalarParam):
        return f"{_CTYPE[p.dtype]} {p.name}"
    qual = d.space_names.get(p.space, "")
    qual = f"{qual} " if qual else ""
    return f"{qual}{_CTYPE[p.elem]}* {p.name}"


def render(kernel: Kernel, dialect: Dialect | None = None) -> str:
    """Render ``kernel`` as dialect-styled pseudo source."""
    d = dialect or ({"cuda": CUDA, "opencl": OPENCL}[kernel.dialect])
    head = "__global__ void" if d is CUDA else "__kernel void"
    lines = [f"{head} {kernel.name}({', '.join(_param_decl(p, d) for p in kernel.params)})", "{"]
    for b in kernel.shared:
        lines.append(
            f"    {d.space_names[AddrSpace.SHARED]} {_CTYPE[b.elem]} "
            f"{b.name}[{b.length}];"
        )

    def emit(body, depth):
        pad = "    " * depth
        for s in body:
            if isinstance(s, Let):
                lines.append(
                    f"{pad}{_CTYPE[s.var.vtype]} {s.var.name} = "
                    f"{render_expr(s.value, d)};"
                )
            elif isinstance(s, Assign):
                lines.append(f"{pad}{s.var.name} = {render_expr(s.value, d)};")
            elif isinstance(s, Store):
                lines.append(
                    f"{pad}{s.buf.name}[{render_expr(s.index, d)}] = "
                    f"{render_expr(s.value, d)};"
                )
            elif isinstance(s, Barrier):
                lines.append(f"{pad}{d.barrier_spelling};")
            elif isinstance(s, If):
                lines.append(f"{pad}if ({render_expr(s.cond, d)}) {{")
                emit(s.then, depth + 1)
                if s.orelse:
                    lines.append(f"{pad}}} else {{")
                    emit(s.orelse, depth + 1)
                lines.append(f"{pad}}}")
            elif isinstance(s, For):
                if s.unroll is not None:
                    n = "" if s.unroll.factor == UNROLL_FULL else f" {s.unroll.factor}"
                    tag = f"  // unroll point: {s.unroll.point}" if s.unroll.point else ""
                    lines.append(f"{pad}#pragma unroll{n}{tag}")
                v = s.var.name
                lines.append(
                    f"{pad}for (int {v} = {render_expr(s.start, d)}; "
                    f"{v} < {render_expr(s.stop, d)}; "
                    f"{v} += {render_expr(s.step, d)}) {{"
                )
                emit(s.body, depth + 1)
                lines.append(f"{pad}}}")
            elif isinstance(s, While):
                lines.append(f"{pad}while ({render_expr(s.cond, d)}) {{")
                emit(s.body, depth + 1)
                lines.append(f"{pad}}}")

    emit(kernel.body, 1)
    lines.append("}")
    return "\n".join(lines)
