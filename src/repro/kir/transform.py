"""Reusable AST surgery: substitution, alpha-renaming, loop expansion.

These helpers began life inside the compiler's unroll pass; the rewrite
layer (:mod:`repro.kir.rewrite`) applies the *same* transformations at
the source level, so the mechanics live here in ``kir`` where both can
share them — a source-level unroll and a ``#pragma``-driven compiler
unroll can never drift apart when they expand loops through one code
path.

Everything here is purely structural: no dialect knowledge, no timing,
no legality policy (callers decide *whether* a transformation is legal;
these functions only perform it correctly).
"""
from __future__ import annotations

from typing import Iterable, Optional

from .expr import BinOp, Const, Expr, Var
from .stmt import Assign, Barrier, For, If, Kernel, Let, Stmt, Store, While
from .visit import map_expr, stmt_exprs, walk_exprs, walk_stmts

__all__ = [
    "subst",
    "declared_names",
    "all_names",
    "rename_body",
    "const_trip",
    "expand_full",
    "expand_partial",
    "FreshNames",
]


def subst(e: Expr, mapping: dict) -> Expr:
    """Replace every ``Var`` whose name is in ``mapping`` by its value."""

    def repl(n: Expr) -> Expr:
        if isinstance(n, Var) and n.name in mapping:
            return mapping[n.name]
        return n

    return map_expr(e, repl)


def declared_names(body: Iterable[Stmt]) -> set:
    """Names declared *within* a body (Lets and nested loop variables)."""
    names = set()
    for s in walk_stmts(body):
        if isinstance(s, Let):
            names.add(s.var.name)
        elif isinstance(s, For):
            names.add(s.var.name)
    return names


def all_names(kernel: Kernel) -> set:
    """Every identifier a kernel mentions anywhere.

    Used by fresh-name allocation: a name outside this set can be
    introduced without shadowing or capturing anything (parameters,
    shared buffers, declarations, and even dangling references).
    """
    names = {p.name for p in kernel.params} | {b.name for b in kernel.shared}
    names |= declared_names(kernel.body)
    for s in walk_stmts(kernel.body):
        for top in stmt_exprs(s):
            for e in walk_exprs(top):
                if isinstance(e, Var):
                    names.add(e.name)
        if isinstance(s, (Let, Assign)):
            names.add(s.var.name)
    return names


class FreshNames:
    """Allocate identifiers that collide with nothing in ``kernel``."""

    def __init__(self, kernel: Kernel):
        self._taken = all_names(kernel)
        self._counters: dict = {}

    def fresh(self, stem: str) -> str:
        n = self._counters.get(stem, 0)
        while True:
            cand = f"{stem}{n}"
            n += 1
            if cand not in self._taken:
                self._counters[stem] = n
                self._taken.add(cand)
                return cand


def rename_body(body, mapping: dict, suffix: str):
    """Copy a body substituting expressions and alpha-renaming decls.

    ``mapping`` is mutated sequentially at this nesting level (a ``Let``
    renames all *subsequent* uses of its name in this copy) and copied
    for nested blocks so branch-local renames do not leak out.
    """
    out = []
    for s in body:
        if isinstance(s, Let):
            nv = Var(f"{s.var.name}{suffix}", s.var.vtype)
            out.append(Let(nv, subst(s.value, mapping)))
            mapping[s.var.name] = nv
        elif isinstance(s, Assign):
            tgt = mapping.get(s.var.name)
            if isinstance(tgt, Const):
                raise ValueError(
                    f"loop variable {s.var.name!r} is assigned inside an "
                    "unrolled loop body"
                )
            nv = tgt if isinstance(tgt, Var) else s.var
            out.append(Assign(nv, subst(s.value, mapping)))
        elif isinstance(s, Store):
            out.append(Store(s.buf, subst(s.index, mapping), subst(s.value, mapping)))
        elif isinstance(s, Barrier):
            out.append(s)
        elif isinstance(s, If):
            out.append(
                If(
                    subst(s.cond, mapping),
                    tuple(rename_body(s.then, dict(mapping), suffix)),
                    tuple(rename_body(s.orelse, dict(mapping), suffix)),
                )
            )
        elif isinstance(s, For):
            nv = Var(f"{s.var.name}{suffix}", s.var.vtype)
            inner = dict(mapping)
            inner[s.var.name] = nv
            out.append(
                For(
                    nv,
                    subst(s.start, mapping),
                    subst(s.stop, mapping),
                    subst(s.step, mapping),
                    tuple(rename_body(s.body, inner, suffix)),
                    s.unroll,
                )
            )
        elif isinstance(s, While):
            out.append(
                While(
                    subst(s.cond, mapping),
                    tuple(rename_body(s.body, dict(mapping), suffix)),
                )
            )
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown statement {s!r}")
    return out


def const_trip(s: For) -> Optional[int]:
    """Trip count of a ``For`` with compile-time-constant bounds, else None."""
    if (
        isinstance(s.start, Const)
        and isinstance(s.stop, Const)
        and isinstance(s.step, Const)
        and int(s.step.value) > 0
    ):
        lo, hi, st = int(s.start.value), int(s.stop.value), int(s.step.value)
        if hi <= lo:
            return 0
        return (hi - lo + st - 1) // st
    return None


def expand_full(s: For) -> list:
    """Fully expand a constant-trip loop into ``trip`` renamed copies."""
    trip = const_trip(s)
    lo, st = int(s.start.value), int(s.step.value)
    out = []
    for k in range(trip):
        mapping = {s.var.name: Const(lo + k * st, s.var.vtype)}
        out.extend(rename_body(s.body, mapping, f"__u{s.var.name}{k}"))
    return out


def expand_partial(s: For, factor: int) -> list:
    """Unroll by ``factor``: main loop with ``factor`` copies + remainder."""
    trip = const_trip(s)
    lo, hi, st = int(s.start.value), int(s.stop.value), int(s.step.value)
    main_trips = (trip // factor) * factor
    copies = []
    for k in range(factor):
        mapping = {
            s.var.name: BinOp("add", s.var, Const(k * st, s.var.vtype))
            if k
            else s.var
        }
        copies.extend(rename_body(s.body, mapping, f"__p{s.var.name}{k}"))
    main = For(
        s.var,
        s.start,
        Const(lo + main_trips * st, s.var.vtype),
        Const(factor * st, s.var.vtype),
        tuple(copies),
        None,
    )
    out: list = [main]
    for k in range(main_trips, trip):
        mapping = {s.var.name: Const(lo + k * st, s.var.vtype)}
        out.extend(rename_body(s.body, mapping, f"__r{s.var.name}{k}"))
    return out
