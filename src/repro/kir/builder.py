"""Imperative builder DSL for authoring kernels in either dialect.

A :class:`KernelBuilder` gives kernels a shape close to their CUDA C /
OpenCL C originals::

    k = KernelBuilder("vecadd", CUDA)
    a, b, c = (k.buffer(n, Scalar.F32) for n in "abc")
    n = k.scalar("n", Scalar.S32)
    i = k.let("i", k.global_id(0))
    with k.if_(i < n):
        k.store(c, i, a[i] + b[i])
    kern = k.finish()

Control-flow constructs are context managers so nesting follows Python
indentation.  The builder performs dialect feature gating (texture loads
are rejected under OpenCL) and defers full validation to
:mod:`repro.kir.validate`.
"""
from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Union

from .dialect import CUDA, Dialect
from .expr import (
    BufferRef,
    Const,
    Expr,
    ExprLike,
    Load,
    Select,
    SpecialReg,
    SReg,
    UnOp,
    Var,
    as_expr,
)
from .stmt import (
    Assign,
    Barrier,
    For,
    If,
    Kernel,
    Let,
    ScalarParam,
    Store,
    Unroll,
    UNROLL_FULL,
    While,
)
from .types import AddrSpace, Scalar
from .validate import validate

__all__ = ["KernelBuilder"]

_DIMS = "xyz"


class _Axis3:
    """``k.tid.x`` style access to the geometry registers."""

    def __init__(self, prefix: str):
        for d in _DIMS:
            setattr(self, d, SpecialReg(SReg(f"{prefix}.{d}")))


class KernelBuilder:
    def __init__(self, name: str, dialect: Dialect = CUDA, wg_hint: int = 256):
        self.name = name
        self.dialect = dialect
        self.wg_hint = wg_hint
        self._params: list[Union[ScalarParam, BufferRef]] = []
        self._shared: list[BufferRef] = []
        self._stack: list[list] = [[]]
        self._names: set[str] = set()
        self._var_counter = 0
        # geometry registers under both naming traditions
        self.tid = _Axis3("tid")
        self.ctaid = _Axis3("ctaid")
        self.ntid = _Axis3("ntid")
        self.nctaid = _Axis3("nctaid")

    # -- parameters ------------------------------------------------------
    def _claim(self, name: str) -> str:
        if name in self._names:
            raise ValueError(f"duplicate name {name!r} in kernel {self.name}")
        self._names.add(name)
        return name

    def buffer(
        self, name: str, elem: Scalar, space: AddrSpace = AddrSpace.GLOBAL
    ) -> BufferRef:
        """Declare a pointer parameter in ``space`` (GLOBAL or CONST)."""
        if space not in (AddrSpace.GLOBAL, AddrSpace.CONST):
            raise ValueError("buffer parameters must be GLOBAL or CONST")
        b = BufferRef(self._claim(name), elem, space)
        self._params.append(b)
        return b

    def scalar(self, name: str, dtype: Scalar = Scalar.S32) -> Var:
        self._params.append(ScalarParam(self._claim(name), dtype))
        return Var(name, dtype)

    def shared(self, name: str, elem: Scalar, length: int) -> BufferRef:
        """Declare a statically-sized __shared__ / __local scratch buffer."""
        b = BufferRef(self._claim(name), elem, AddrSpace.SHARED, length)
        self._shared.append(b)
        return b

    # -- common derived indices -------------------------------------------
    def global_id(self, dim: int = 0) -> Expr:
        """``blockIdx*blockDim + threadIdx`` / ``get_global_id``."""
        d = _DIMS[dim]
        return getattr(self.ctaid, d) * getattr(self.ntid, d) + getattr(self.tid, d)

    def global_size(self, dim: int = 0) -> Expr:
        d = _DIMS[dim]
        return getattr(self.nctaid, d) * getattr(self.ntid, d)

    # -- statements --------------------------------------------------------
    def _emit(self, s) -> None:
        self._stack[-1].append(s)

    def let(self, name: str, value: ExprLike, dtype: Optional[Scalar] = None) -> Var:
        value = as_expr(value)
        v = Var(self._claim(name), dtype or value.dtype)
        self._emit(Let(v, value))
        return v

    def fresh(self, value: ExprLike, hint: str = "t") -> Var:
        """``let`` with an auto-generated name."""
        self._var_counter += 1
        return self.let(f"{hint}{self._var_counter}", value)

    def assign(self, var: Var, value: ExprLike) -> None:
        self._emit(Assign(var, as_expr(value, like=var)))

    def store(self, buf: BufferRef, index: ExprLike, value: ExprLike) -> None:
        idx = as_expr(index)
        self._emit(Store(buf, idx, as_expr(value)))

    def barrier(self) -> None:
        self._emit(Barrier())

    # -- loads with feature gating ------------------------------------------
    def texload(self, buf: BufferRef, index: ExprLike) -> Load:
        """CUDA ``tex1Dfetch``.  Rejected when building OpenCL kernels."""
        if not self.dialect.allows_texture:
            raise TypeError(
                f"texture fetches are not available in the {self.dialect.name} dialect"
            )
        return Load(buf, as_expr(index), via_texture=True)

    # -- control flow --------------------------------------------------------
    @contextlib.contextmanager
    def if_(self, cond: Expr) -> Iterator[None]:
        self._stack.append([])
        yield
        then = tuple(self._stack.pop())
        self._emit(If(as_expr(cond), then))

    @contextlib.contextmanager
    def if_else(self, cond: Expr) -> Iterator[list]:
        """``with k.if_else(c) as orelse:`` — append else-branch builders
        by calling ``orelse.append`` ... use :meth:`else_` instead for
        statement building; this yields a marker the user calls."""
        self._stack.append([])
        marker: list = []
        yield marker
        then = tuple(self._stack.pop())
        self._emit(If(as_expr(cond), then, tuple(marker)))

    @contextlib.contextmanager
    def collect(self) -> Iterator[list]:
        """Capture statements into a list (for else-branches)."""
        self._stack.append([])
        out: list = []
        yield out
        out.extend(self._stack.pop())

    def emit_if(self, cond: Expr, then: list, orelse: list = ()) -> None:
        self._emit(If(as_expr(cond), tuple(then), tuple(orelse)))

    @contextlib.contextmanager
    def for_(
        self,
        name: str,
        start: ExprLike,
        stop: ExprLike,
        step: ExprLike = 1,
        unroll: Optional[Unroll] = None,
        dtype: Scalar = Scalar.S32,
    ) -> Iterator[Var]:
        v = Var(self._claim(name), dtype)
        self._stack.append([])
        yield v
        body = tuple(self._stack.pop())
        self._emit(
            For(v, as_expr(start), as_expr(stop), as_expr(step), body, unroll)
        )

    @contextlib.contextmanager
    def while_(self, cond: Expr) -> Iterator[None]:
        self._stack.append([])
        yield
        body = tuple(self._stack.pop())
        self._emit(While(as_expr(cond), body))

    def unroll(self, factor: int = UNROLL_FULL, point: str = "") -> Unroll:
        """Create a ``#pragma unroll`` annotation for :meth:`for_`."""
        return Unroll(factor, point)

    # -- math helpers -----------------------------------------------------
    @staticmethod
    def sqrt(x: ExprLike) -> UnOp:
        return UnOp("sqrt", as_expr(x))

    @staticmethod
    def rsqrt(x: ExprLike) -> UnOp:
        return UnOp("rsqrt", as_expr(x))

    @staticmethod
    def sin(x: ExprLike) -> UnOp:
        return UnOp("sin", as_expr(x))

    @staticmethod
    def cos(x: ExprLike) -> UnOp:
        return UnOp("cos", as_expr(x))

    @staticmethod
    def exp(x: ExprLike) -> UnOp:
        return UnOp("exp", as_expr(x))

    @staticmethod
    def abs(x: ExprLike) -> UnOp:
        return UnOp("abs", as_expr(x))

    @staticmethod
    def floor(x: ExprLike) -> UnOp:
        return UnOp("floor", as_expr(x))

    @staticmethod
    def f2i(x: ExprLike) -> UnOp:
        return UnOp("f2i", as_expr(x))

    @staticmethod
    def i2f(x: ExprLike) -> UnOp:
        return UnOp("i2f", as_expr(x))

    @staticmethod
    def f2u(x: ExprLike) -> UnOp:
        return UnOp("f2u", as_expr(x))

    @staticmethod
    def u2f(x: ExprLike) -> UnOp:
        return UnOp("u2f", as_expr(x))

    @staticmethod
    def select(pred: Expr, a: ExprLike, b: ExprLike) -> Select:
        a = as_expr(a)
        return Select(pred, a, as_expr(b, like=a))

    @staticmethod
    def min(a: ExprLike, b: ExprLike):
        a = as_expr(a)
        return a._bin("min", b)

    @staticmethod
    def max(a: ExprLike, b: ExprLike):
        a = as_expr(a)
        return a._bin("max", b)

    @staticmethod
    def const(v, dtype: Scalar = Scalar.S32) -> Const:
        return Const(v, dtype)

    # -- finish -----------------------------------------------------------
    def finish(self, check: bool = True) -> Kernel:
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced control-flow context managers")
        k = Kernel(
            name=self.name,
            params=list(self._params),
            body=list(self._stack[0]),
            dialect=self.dialect.name,
            shared=list(self._shared),
            wg_hint=self.wg_hint,
        )
        if check:
            validate(k)
        return k
