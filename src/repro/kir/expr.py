"""Expression nodes of the kernel IR.

Expressions are immutable trees.  Python operator overloading on
:class:`Expr` lets benchmark kernels read close to CUDA C / OpenCL C
source while still building a first-class AST that both front-end
compilers consume.
"""
from __future__ import annotations

import dataclasses
import enum
from typing import Union

from .types import AddrSpace, Scalar, is_float, is_integer

__all__ = [
    "Expr",
    "Const",
    "Var",
    "SpecialReg",
    "SReg",
    "BinOp",
    "UnOp",
    "Select",
    "Load",
    "BufferRef",
    "as_expr",
    "BINOP_RESULT",
    "COMPARISONS",
]


class SReg(enum.Enum):
    """Built-in thread-geometry registers.

    CUDA spelling on the left of each comment, OpenCL on the right.
    """

    TID_X = "tid.x"  # threadIdx.x       / get_local_id(0)
    TID_Y = "tid.y"
    TID_Z = "tid.z"
    CTAID_X = "ctaid.x"  # blockIdx.x    / get_group_id(0)
    CTAID_Y = "ctaid.y"
    CTAID_Z = "ctaid.z"
    NTID_X = "ntid.x"  # blockDim.x      / get_local_size(0)
    NTID_Y = "ntid.y"
    NTID_Z = "ntid.z"
    NCTAID_X = "nctaid.x"  # gridDim.x   / get_num_groups(0)
    NCTAID_Y = "nctaid.y"
    NCTAID_Z = "nctaid.z"


#: Binary operators.  Comparison operators produce ``Scalar.PRED``.
_ARITH_OPS = {"add", "sub", "mul", "div", "rem", "min", "max"}
_LOGIC_OPS = {"and", "or", "xor", "shl", "shr"}
COMPARISONS = {"lt", "le", "gt", "ge", "eq", "ne"}
_BOOL_OPS = {"land", "lor"}

BINOP_RESULT = "binop"  # sentinel documented below


def _result_type(op: str, a: "Expr", b: "Expr") -> Scalar:
    if op in COMPARISONS or op in _BOOL_OPS:
        return Scalar.PRED
    return a.dtype


@dataclasses.dataclass(frozen=True, eq=False)
class Expr:
    """Base class: every expression carries its scalar type.

    ``eq=False`` throughout the hierarchy: a dataclass-generated
    ``__eq__`` here would compare only ``dtype`` (the sole base field),
    making any two same-typed expressions "equal" — which once silently
    swallowed rewrites.  Expression identity is object identity; use
    ``.key()`` for structural comparison.
    """

    dtype: Scalar = dataclasses.field(init=False, default=Scalar.S32)

    # -- operator sugar -------------------------------------------------
    def _bin(self, op: str, other: "ExprLike", swap: bool = False) -> "BinOp":
        o = as_expr(other, like=self)
        a, b = (o, self) if swap else (self, o)
        return BinOp(op, a, b)

    def __add__(self, o):
        return self._bin("add", o)

    def __radd__(self, o):
        return self._bin("add", o, swap=True)

    def __sub__(self, o):
        return self._bin("sub", o)

    def __rsub__(self, o):
        return self._bin("sub", o, swap=True)

    def __mul__(self, o):
        return self._bin("mul", o)

    def __rmul__(self, o):
        return self._bin("mul", o, swap=True)

    def __truediv__(self, o):
        return self._bin("div", o)

    def __rtruediv__(self, o):
        return self._bin("div", o, swap=True)

    def __floordiv__(self, o):
        return self._bin("div", o)

    def __mod__(self, o):
        return self._bin("rem", o)

    def __and__(self, o):
        return self._bin("and", o)

    def __rand__(self, o):
        return self._bin("and", o, swap=True)

    def __or__(self, o):
        return self._bin("or", o)

    def __ror__(self, o):
        return self._bin("or", o, swap=True)

    def __xor__(self, o):
        return self._bin("xor", o)

    def __rxor__(self, o):
        return self._bin("xor", o, swap=True)

    def __lshift__(self, o):
        return self._bin("shl", o)

    def __rlshift__(self, o):
        return self._bin("shl", o, swap=True)

    def __rshift__(self, o):
        return self._bin("shr", o)

    def __rrshift__(self, o):
        return self._bin("shr", o, swap=True)

    def __rmod__(self, o):
        return self._bin("rem", o, swap=True)

    def __rfloordiv__(self, o):
        return self._bin("div", o, swap=True)

    def __lt__(self, o):
        return self._bin("lt", o)

    def __le__(self, o):
        return self._bin("le", o)

    def __gt__(self, o):
        return self._bin("gt", o)

    def __ge__(self, o):
        return self._bin("ge", o)

    def eq(self, o):
        return self._bin("eq", o)

    def ne(self, o):
        return self._bin("ne", o)

    def logical_and(self, o):
        return self._bin("land", o)

    def logical_or(self, o):
        return self._bin("lor", o)

    def __neg__(self):
        return UnOp("neg", self)

    # hash/eq: structural (dataclass-generated in subclasses); keep the
    # comparison operators above for IR building, so disable __eq__ abuse.
    __hash__ = object.__hash__


ExprLike = Union[Expr, int, float, bool]


@dataclasses.dataclass(frozen=True, eq=False)
class Const(Expr):
    """A literal constant."""

    value: Union[int, float, bool]
    ctype: Scalar = Scalar.S32

    def __post_init__(self):
        object.__setattr__(self, "dtype", self.ctype)

    def key(self):
        return ("const", self.value, self.ctype)


@dataclasses.dataclass(frozen=True, eq=False)
class Var(Expr):
    """A reference to a ``let``-bound local variable or scalar parameter."""

    name: str
    vtype: Scalar = Scalar.S32

    def __post_init__(self):
        object.__setattr__(self, "dtype", self.vtype)

    def key(self):
        return ("var", self.name)


@dataclasses.dataclass(frozen=True, eq=False)
class SpecialReg(Expr):
    """A built-in geometry register (threadIdx.x / get_local_id(0) ...)."""

    reg: SReg

    def __post_init__(self):
        object.__setattr__(self, "dtype", Scalar.U32)

    def key(self):
        return ("sreg", self.reg)


@dataclasses.dataclass(frozen=True, eq=False)
class BinOp(Expr):
    op: str
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.op not in _ARITH_OPS | _LOGIC_OPS | COMPARISONS | _BOOL_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")
        if self.op in _LOGIC_OPS and not (
            is_integer(self.a.dtype) or self.a.dtype is Scalar.PRED
        ):
            raise TypeError(f"{self.op} requires integer operands, got {self.a.dtype}")
        object.__setattr__(self, "dtype", _result_type(self.op, self.a, self.b))

    def key(self):
        return ("bin", self.op, self.a.key(), self.b.key())


#: Unary operators: arithmetic/bit plus the math builtins both languages
#: expose (CUDA ``__sinf`` / OpenCL ``native_sin`` etc. are modeled by the
#: plain names; transcendental cost differences live in the timing model).
UNARY_OPS = {
    "neg",
    "not",
    "abs",
    "sqrt",
    "rsqrt",
    "sin",
    "cos",
    "exp",
    "log",
    "floor",
    "f2i",  # float -> s32 (truncating)
    "i2f",  # s32   -> f32
    "u2f",
    "f2u",
    "widen",  # 32 -> 64 bit zero/sign extension
}

_CVT_RESULT = {
    "f2i": Scalar.S32,
    "f2u": Scalar.U32,
    "i2f": Scalar.F32,
    "u2f": Scalar.F32,
    "widen": Scalar.S64,
}


@dataclasses.dataclass(frozen=True, eq=False)
class UnOp(Expr):
    op: str
    a: Expr

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")
        object.__setattr__(self, "dtype", _CVT_RESULT.get(self.op, self.a.dtype))

    def key(self):
        return ("un", self.op, self.a.key())


@dataclasses.dataclass(frozen=True, eq=False)
class Select(Expr):
    """``pred ? a : b`` — CUDA ternary, OpenCL ``select``."""

    pred: Expr
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.pred.dtype is not Scalar.PRED:
            raise TypeError("Select predicate must be PRED-typed")
        object.__setattr__(self, "dtype", self.a.dtype)

    def key(self):
        return ("sel", self.pred.key(), self.a.key(), self.b.key())


@dataclasses.dataclass(frozen=True)
class BufferRef:
    """A pointer-typed kernel parameter (or a shared-memory allocation).

    ``space`` distinguishes plain global pointers from constant buffers,
    shared (CUDA) / local (OpenCL) scratch, and texture-bound buffers.
    """

    name: str
    elem: Scalar
    space: AddrSpace = AddrSpace.GLOBAL
    length: int | None = None  # static length for SHARED/CONST declarations

    def __getitem__(self, index: ExprLike) -> "Load":
        return Load(self, as_expr(index))

    def at(self, index: ExprLike) -> "Load":
        return self[index]


@dataclasses.dataclass(frozen=True, eq=False)
class Load(Expr):
    """A load of ``buf[index]`` from the buffer's address space."""

    buf: BufferRef
    index: Expr
    via_texture: bool = False  # CUDA-only read path (tex1Dfetch)

    def __post_init__(self):
        object.__setattr__(self, "dtype", self.buf.elem)

    def key(self):
        return ("load", self.buf.name, self.index.key(), self.via_texture)


def as_expr(v: ExprLike, like: Expr | None = None) -> Expr:
    """Coerce a Python number into a :class:`Const`.

    When ``like`` is provided, integer literals adopt its scalar type so
    ``i + 1`` keeps ``i``'s signedness; floats always become F32 unless
    the context is F64.
    """
    if isinstance(v, Expr):
        return v
    if isinstance(v, bool):
        return Const(v, Scalar.PRED)
    if isinstance(v, int):
        t = Scalar.S32
        if like is not None and is_integer(like.dtype):
            t = like.dtype
        return Const(v, t)
    if isinstance(v, float):
        t = Scalar.F32
        if like is not None and like.dtype is Scalar.F64:
            t = Scalar.F64
        return Const(v, t)
    raise TypeError(f"cannot convert {v!r} to IR expression")
