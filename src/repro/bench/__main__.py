"""CLI: run the benchmark sweep and gate against the committed baseline.

    python -m repro.bench --size small --jobs 4
    python -m repro.bench --update-baseline      # refresh the baseline
    python -m repro.bench --compare BENCH_small.json   # re-gate a file

Writes ``BENCH_<tag>.json`` (one point of the repo's perf trajectory)
and exits 1 when any gated metric regresses beyond its tolerance, 2
when no baseline exists to gate against.
"""
from __future__ import annotations

import argparse
import sys

from .. import telemetry
from ..telemetry import spans as tspans
from . import (
    append_history,
    compare,
    default_baseline_path,
    default_history_path,
    load_bench,
    make_payload,
    regressions,
    render_report,
    run_bench,
    write_bench,
)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the benchmark sweep and gate it against the baseline",
    )
    ap.add_argument("--size", default="small", choices=["small", "default"])
    ap.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan cold work units out over N worker processes",
    )
    ap.add_argument(
        "--tag", default=None, metavar="TAG",
        help="label for the output file (default: the --size value)",
    )
    ap.add_argument(
        "--experiments", nargs="*", default=None, metavar="NAME",
        help="restrict the sweep to these experiments (default: all)",
    )
    ap.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline to gate against (default: benchmarks/BENCH_baseline.json)",
    )
    ap.add_argument(
        "--output", default=None, metavar="FILE",
        help="where to write the result (default: BENCH_<tag>.json in cwd)",
    )
    ap.add_argument(
        "--update-baseline", action="store_true",
        help="write this run as the new baseline instead of gating",
    )
    ap.add_argument(
        "--compare", default=None, metavar="FILE",
        help="gate an existing BENCH_*.json instead of running the sweep",
    )
    ap.add_argument(
        "--record-history", nargs="?", const="", default=None, metavar="FILE",
        help="append this run to the bench trajectory (default file: "
        "benchmarks/BENCH_history.jsonl)",
    )
    telemetry.add_telemetry_arguments(ap)
    args = ap.parse_args(argv)

    tag = args.tag or args.size
    baseline_path = args.baseline or default_baseline_path()
    tr = telemetry.start_run(args, "repro.bench")

    if args.compare:
        current = load_bench(args.compare)
    else:
        with tspans.use_tracer(tr):
            values = run_bench(
                size=args.size,
                jobs=args.jobs,
                experiments=args.experiments,
                progress=telemetry.progress_mode(args),
            )
        current = make_payload(values, tag=tag, size=args.size, jobs=args.jobs)
        out = args.output or f"BENCH_{tag}.json"
        write_bench(current, out)
        print(f"bench: wrote {out}", file=sys.stderr)

    telemetry.finish_run(args, tr, "repro.bench")

    if args.record_history is not None:
        hpath = append_history(
            current, args.record_history or default_history_path()
        )
        print(f"bench: appended to trajectory {hpath}", file=sys.stderr)

    if args.update_baseline:
        write_bench(current, baseline_path)
        print(f"bench: baseline updated at {baseline_path}", file=sys.stderr)
        return 0

    try:
        baseline = load_bench(baseline_path)
    except OSError:
        print(
            f"bench: no baseline at {baseline_path}; run with "
            "--update-baseline to create one",
            file=sys.stderr,
        )
        return 2
    rows = compare(current, baseline)
    print(render_report(rows, tag=f"bench[{tag}] vs {baseline_path}"))
    return 1 if regressions(rows) else 0


if __name__ == "__main__":
    raise SystemExit(main())
