"""repro.bench — the continuous-benchmark regression gate.

``python -m repro.bench`` runs the small sweep cold (fresh cache) and
warm (second pass over the same cache), snapshots the telemetry
metrics, and writes ``BENCH_<tag>.json`` — one point of the repo's
perf trajectory.  Against a committed baseline it compares every
gated metric within a per-metric tolerance and exits non-zero on
regression.

What gets gated is chosen for cross-machine stability: the simulator
runs on a *virtual* clock, so simulated kernel seconds, launch counts,
launch-overhead totals, DRAM traffic, and warp-instruction counts are
bit-stable across hosts, job counts, and scheduling — any drift means
the model (or the harness) changed, which is exactly what the gate is
for.  Wall-clock numbers (cold/warm sweep seconds) are recorded with
``tolerance: null``: informational trend data, never a CI failure.
"""
from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from .._version import __version__
from ..telemetry import metrics as tmetrics
from ..telemetry import spans as tspans
from ..telemetry.manifest import git_sha

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_TOLERANCES",
    "run_bench",
    "compare",
    "render_report",
    "write_bench",
    "load_bench",
    "default_baseline_path",
    "HISTORY_SCHEMA",
    "default_history_path",
    "history_record",
    "append_history",
    "load_history",
]

SCHEMA_VERSION = 1

#: layout version of one BENCH_history.jsonl record
HISTORY_SCHEMA = 1

#: gated metric -> relative tolerance.  The virtual-clock metrics are
#: deterministic, so the tolerance only absorbs float summation noise;
#: ``None`` marks informational (never-failing) wall-clock metrics.
DEFAULT_TOLERANCES = {
    "units.total": 0.0,
    "units.failed": 0.0,
    "sim.launches": 0.0,
    "sim.kernel_seconds": 0.01,
    "sim.dram_bytes": 0.01,
    "sim.warp_instructions": 0.01,
    "launch.cuda.count": 0.0,
    "launch.cuda.overhead_s": 0.01,
    "launch.opencl.count": 0.0,
    "launch.opencl.overhead_s": 0.01,
    "wall.cold_s": None,
    "wall.warm_s": None,
}


def default_baseline_path() -> Path:
    """The committed baseline: ``benchmarks/BENCH_baseline.json``."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_baseline.json"


def _counter_value(snap: dict, name: str) -> float:
    m = snap.get(name)
    return float(m["value"]) if m else 0.0


def _hist_sum(snap: dict, name: str) -> float:
    m = snap.get(name)
    return float(m["sum"]) if m else 0.0


def run_bench(
    size: str = "small",
    jobs: int = 1,
    experiments=None,
    progress="off",
) -> dict:
    """Run the sweep cold + warm and return ``{metric: value}``.

    Runs in a throwaway cache directory and a fresh metrics registry so
    the numbers are scoped to this run regardless of ambient state.
    The active tracer (if any) sees the whole thing as two spans,
    ``bench.cold`` and ``bench.warm``.
    """
    from .. import exec as rexec
    from ..experiments import EXPERIMENTS
    from ..experiments.runner import collect_units

    names = list(experiments) if experiments else list(EXPERIMENTS)
    units = collect_units(names, size)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir, \
            tmetrics.use_registry() as reg:
        with tspans.span("bench.cold", "engine", units=len(units), jobs=jobs):
            t0 = time.perf_counter()
            ex = rexec.SweepExecutor(
                jobs=jobs, cache=cache_dir, progress=progress,
                adaptive_jobs=True,
            )
            with rexec.use_executor(ex):
                ex.prewarm(units)
            cold_s = time.perf_counter() - t0
        with tspans.span("bench.warm", "engine", units=len(units)):
            t0 = time.perf_counter()
            ex2 = rexec.SweepExecutor(
                jobs=jobs, cache=cache_dir, progress=progress,
                adaptive_jobs=True,
            )
            with rexec.use_executor(ex2):
                ex2.prewarm(units)
            warm_s = time.perf_counter() - t0
        snap = reg.snapshot()
        failed = len(ex.stats.failures)
    return {
        "units.total": float(len(units)),
        "units.failed": float(failed),
        "sim.launches": _counter_value(snap, "sim.launches"),
        "sim.kernel_seconds": _hist_sum(snap, "sim.kernel_s"),
        "sim.dram_bytes": _counter_value(snap, "sim.dram_bytes"),
        "sim.warp_instructions": _counter_value(snap, "sim.warp_instructions"),
        "launch.cuda.count": _counter_value(snap, "runtime.cuda.launches"),
        "launch.cuda.overhead_s": _counter_value(
            snap, "runtime.cuda.launch_overhead_s"
        ),
        "launch.opencl.count": _counter_value(snap, "runtime.opencl.launches"),
        "launch.opencl.overhead_s": _counter_value(
            snap, "runtime.opencl.launch_overhead_s"
        ),
        "wall.cold_s": cold_s,
        "wall.warm_s": warm_s,
    }


def make_payload(
    values: dict,
    tag: str,
    size: str,
    jobs: int,
    tolerances: Optional[dict] = None,
) -> dict:
    """The ``BENCH_<tag>.json`` document for a finished run."""
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    return {
        "schema": SCHEMA_VERSION,
        "tag": tag,
        "size": size,
        "jobs": jobs,
        "version": __version__,
        "git_sha": git_sha(),
        "created_unix": time.time(),
        "metrics": {
            name: {"value": values[name], "tolerance": tol.get(name)}
            for name in sorted(values)
        },
    }


def write_bench(payload: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
    os.replace(tmp, path)
    return path


def load_bench(path) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {payload.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return payload


# -- bench history ---------------------------------------------------------
def default_history_path() -> Path:
    """The committed trajectory: ``benchmarks/BENCH_history.jsonl``."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_history.jsonl"


def history_record(payload: dict) -> dict:
    """One append-only trajectory point, slimmed from a bench payload.

    Metrics flatten to plain ``{name: value}`` (tolerances live with
    the baseline, not the trajectory) so a record stays one short line
    and ``repro.obs regress --history`` can diff any two points.
    """
    return {
        "schema": HISTORY_SCHEMA,
        "tag": payload.get("tag"),
        "size": payload.get("size"),
        "jobs": payload.get("jobs"),
        "version": payload.get("version"),
        "git_sha": payload.get("git_sha"),
        "created_unix": payload.get("created_unix"),
        "metrics": {
            name: m["value"] for name, m in sorted(
                (payload.get("metrics") or {}).items()
            )
        },
    }


def append_history(payload: dict, path=None) -> Path:
    """Append one bench run to the trajectory file (JSONL, one line)."""
    path = Path(path) if path is not None else default_history_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(history_record(payload), sort_keys=True,
                      separators=(",", ":"))
    with open(path, "a") as f:
        f.write(line + "\n")
    return path


def load_history(path=None) -> list:
    """Every parseable trajectory record, in file order.

    Torn or foreign-schema lines are skipped, never fatal — the file is
    appended by many CI runs and a truncated tail must not break the
    tooling reading it.
    """
    path = Path(path) if path is not None else default_history_path()
    records = []
    try:
        raw = path.read_text()
    except OSError:
        return records
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue
        if isinstance(rec, dict) and rec.get("schema") == HISTORY_SCHEMA:
            records.append(rec)
    return records


def compare(current: dict, baseline: dict) -> list:
    """Compare two bench payloads; one row dict per baseline metric.

    Row statuses: ``ok`` (within tolerance), ``regression`` (outside
    tolerance, both directions — for deterministic metrics *any* drift
    means behaviour changed), ``info`` (tolerance is null), ``missing``
    (metric vanished from the current run; fails the gate).
    """
    cur = current.get("metrics", {})
    rows = []
    for name in sorted(baseline.get("metrics", {})):
        base = baseline["metrics"][name]
        tol = base.get("tolerance")
        b = float(base["value"])
        if name not in cur:
            rows.append(
                {"metric": name, "baseline": b, "current": None,
                 "tolerance": tol, "status": "missing", "delta": None}
            )
            continue
        c = float(cur[name]["value"])
        delta = c - b
        if tol is None:
            status = "info"
        else:
            # relative band around the baseline, with an absolute floor
            # so a zero baseline still tolerates float dust
            allowed = tol * max(abs(b), 1.0) + 1e-9
            status = "ok" if abs(delta) <= allowed else "regression"
        rows.append(
            {"metric": name, "baseline": b, "current": c,
             "tolerance": tol, "status": status, "delta": delta}
        )
    return rows


def regressions(rows) -> list:
    return [r for r in rows if r["status"] in ("regression", "missing")]


def _fmt(v) -> str:
    if v is None:
        return "-"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def render_report(rows, tag: str = "bench") -> str:
    """ASCII gate report in the house table style."""
    width = max([len(r["metric"]) for r in rows] + [10])
    head = (
        f"{'metric':<{width}} {'baseline':>14} {'current':>14} "
        f"{'tol':>6} {'status':>10}"
    )
    bad = len(regressions(rows))
    lines = [
        f"== {tag}: {len(rows)} gated metric(s), {bad} regression(s) ==",
        head,
        "-" * len(head),
    ]
    for r in rows:
        tol = "-" if r["tolerance"] is None else f"{r['tolerance']:.0%}"
        lines.append(
            f"{r['metric']:<{width}} {_fmt(r['baseline']):>14} "
            f"{_fmt(r['current']):>14} {tol:>6} {r['status']:>10}"
        )
    return "\n".join(lines)
