__version__ = "1.2.0"
