__version__ = "1.4.0"
