__version__ = "1.6.0"
