__version__ = "1.5.0"
