__version__ = "1.3.0"
