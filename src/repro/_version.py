__version__ = "1.1.0"
