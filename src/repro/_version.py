__version__ = "1.8.0"
