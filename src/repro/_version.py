__version__ = "1.7.0"
