"""OpenCL runtime over the simulated devices.

Implements the object model the paper's OpenCL benchmarks exercise:
platforms -> devices -> context -> command queue -> program (built with
preprocessor defines) -> kernel -> ND-range enqueue with profiling
events.  Three platforms are registered, matching the paper's testbeds:

* "NVIDIA CUDA"  — GTX480, GTX280 (GPU devices)
* "AMD APP"      — HD5870 (GPU) and Intel920 (CPU; the paper used APP
  v2.2 because Intel's Linux OpenCL was unavailable)
* "IBM OpenCL"   — Cell/BE (ACCELERATOR device)

Build-time defines matter: SDK-derived kernels bake ``WARP_SIZE`` in at
compile time, and AMD's headers define it from the device's wavefront
width (64) while the host-side layout assumed 32 — the mechanism behind
the "FL" entries of Table VI.
"""
from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ...arch.specs import (
    ALL_DEVICES,
    CELLBE,
    DeviceSpec,
    GTX280,
    GTX480,
    HD5870,
    INTEL920,
)
from ...compiler.clc import compile_opencl
from ...errors import ReproError
from ...kir.stmt import Kernel as KirKernel
from ...kir.types import Scalar, sizeof
from ...prof.profile import LaunchProfile
from ...ptx.module import PTXKernel
from ...sim.device import LaunchFailure, LaunchResult, SimDevice
from ...telemetry import metrics
from ...telemetry.metrics import OVERHEAD_BUCKETS_S
from ..overhead import opencl_launch_overhead_s

__all__ = [
    "CLError",
    "DeviceType",
    "Platform",
    "Device",
    "Context",
    "CommandQueue",
    "Buffer",
    "Program",
    "Kernel",
    "Event",
    "get_platforms",
    "create_context_for",
]


class CLError(ReproError):
    """An OpenCL status code, typed into the ``repro.errors`` taxonomy.

    ``code`` is the structured ``CL_*`` status; ``repro.errors.classify``
    maps resource codes onto Table VI's "ABT" without string matching.
    """

    def __init__(self, code: str, message: str = ""):
        super().__init__(
            f"{code}{': ' + message if message else ''}", code=code
        )


class DeviceType:
    GPU = "CL_DEVICE_TYPE_GPU"
    CPU = "CL_DEVICE_TYPE_CPU"
    ACCELERATOR = "CL_DEVICE_TYPE_ACCELERATOR"
    ALL = "CL_DEVICE_TYPE_ALL"


_TYPE_OF = {"gpu": DeviceType.GPU, "cpu": DeviceType.CPU, "accelerator": DeviceType.ACCELERATOR}


class Device:
    """An OpenCL device: a spec plus its simulated hardware."""

    def __init__(self, spec: DeviceSpec, platform: "Platform"):
        self.spec = spec
        self.platform = platform
        self.sim = SimDevice(spec)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def device_type(self) -> str:
        return _TYPE_OF[self.spec.device_type]

    # the queries benchmarks use
    @property
    def max_work_group_size(self) -> int:
        return self.spec.max_threads_per_block

    @property
    def local_mem_size(self) -> int:
        return self.spec.max_shared_per_block

    @property
    def warp_size(self) -> int:
        """CL_NV_warp_size / AMD wavefront width."""
        return self.spec.warp_width

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Device {self.name} ({self.device_type})>"


class Platform:
    def __init__(self, name: str, vendor: str, specs: Sequence[DeviceSpec]):
        self.name = name
        self.vendor = vendor
        self._devices = [Device(s, self) for s in specs]

    def get_devices(self, device_type: str = DeviceType.ALL) -> list:
        if device_type == DeviceType.ALL:
            return list(self._devices)
        out = [d for d in self._devices if d.device_type == device_type]
        if not out:
            raise CLError("CL_DEVICE_NOT_FOUND", f"no {device_type} on {self.name}")
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Platform {self.name}>"


def get_platforms() -> list:
    """The installed platforms of the paper's three testbeds."""
    return [
        Platform("NVIDIA CUDA", "NVIDIA Corporation", [GTX480, GTX280]),
        Platform("AMD Accelerated Parallel Processing", "AMD", [HD5870, INTEL920]),
        Platform("IBM OpenCL", "IBM", [CELLBE]),
    ]


class Context:
    def __init__(self, devices: Sequence[Device]):
        if not devices:
            raise CLError("CL_INVALID_VALUE", "context needs at least one device")
        self.devices = list(devices)

    @property
    def device(self) -> Device:
        return self.devices[0]


def create_context_for(name: str) -> Context:
    """Convenience: a context on the named device (any platform)."""
    for p in get_platforms():
        for d in p.get_devices():
            if d.name == name:
                return Context([d])
    raise CLError("CL_DEVICE_NOT_FOUND", name)


@dataclasses.dataclass
class Buffer:
    context: Context
    base: int
    nbytes: int
    elem: Scalar = Scalar.F32

    @classmethod
    def create(cls, context: Context, count: int, elem: Scalar = Scalar.F32) -> "Buffer":
        nbytes = count * sizeof(elem)
        return cls(context, context.device.sim.alloc(nbytes), nbytes, elem)

    def release(self) -> None:
        self.context.device.sim.free(self.base, self.nbytes)


@dataclasses.dataclass
class Event:
    """Profiling event: CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END}."""

    queued_s: float = 0.0
    submit_s: float = 0.0
    start_s: float = 0.0
    end_s: float = 0.0
    #: per-launch counter record (kernel events only; the simulated
    #: analogue of a vendor profiling extension)
    profile: Optional["LaunchProfile"] = None

    @property
    def kernel_seconds(self) -> float:
        return self.end_s - self.start_s

    @property
    def launch_latency_seconds(self) -> float:
        """Queue entry -> execution start (the paper's 'kernel launch time')."""
        return self.start_s - self.queued_s

    def get_profiling_info(self, param: str) -> int:
        """``clGetEventProfilingInfo``: virtual timestamps in nanoseconds."""
        times = {
            "CL_PROFILING_COMMAND_QUEUED": self.queued_s,
            "CL_PROFILING_COMMAND_SUBMIT": self.submit_s,
            "CL_PROFILING_COMMAND_START": self.start_s,
            "CL_PROFILING_COMMAND_END": self.end_s,
        }
        try:
            return int(round(times[param] * 1e9))
        except KeyError:
            raise CLError("CL_INVALID_VALUE", param) from None


SourceFn = Callable[[Mapping[str, int]], Sequence[KirKernel]]


class Program:
    """An OpenCL program: kernel sources + a build step.

    ``source`` is either a list of IR kernels or a factory taking the
    build defines (``-D`` macros) and returning kernels — SDK code builds
    with ``-DWARP_SIZE=...`` style options, and the value it receives is
    part of the Table VI story.
    """

    def __init__(self, context: Context, source: Union[Sequence[KirKernel], SourceFn]):
        self.context = context
        self._source = source
        self._built: Optional[dict] = None
        self.build_log: list = []
        self.defines: dict = {}
        self.build_s = 0.0

    def build(self, defines: Optional[Mapping[str, int]] = None) -> "Program":
        import time as _time

        t0 = _time.perf_counter()
        defines = dict(defines or {})
        self.defines = defines
        kernels = (
            list(self._source(defines))
            if callable(self._source)
            else list(self._source)
        )
        device = self.context.device
        built = {}
        for k in kernels:
            if k.dialect != "opencl":
                raise CLError(
                    "CL_BUILD_PROGRAM_FAILURE",
                    f"kernel {k.name!r} is not OpenCL C",
                )
            budget = device.spec.launch_reg_budget(k.wg_hint)
            ptx = compile_opencl(k, max_regs=budget)
            ptx.defines = dict(defines)
            built[k.name] = (ptx, k)
            if device.spec.architecture == "cell":
                # the paper's §V remark: IBM's implementation restricts
                # builtins inside inline definitions; surface as warnings
                from ...kir.visit import any_expr
                from ...kir.expr import UnOp

                if any_expr(k.body, lambda e: isinstance(e, UnOp) and e.op in ("sin", "cos")):
                    self.build_log.append(
                        f"{k.name}: warning: trigonometric builtins inside "
                        "inlined helpers are unsupported on this device"
                    )
        self._built = built
        #: clBuildProgram wall time, amortized per kernel when profiling
        self.build_s = _time.perf_counter() - t0
        return self

    def kernel(self, name: str) -> "Kernel":
        if self._built is None:
            raise CLError("CL_INVALID_PROGRAM_EXECUTABLE", "program not built")
        if name not in self._built:
            raise CLError("CL_INVALID_KERNEL_NAME", name)
        ptx, src = self._built[name]
        return Kernel(self, name, ptx, src)


class Kernel:
    def __init__(self, program: Program, name: str, ptx: PTXKernel, source: KirKernel):
        self.program = program
        self.name = name
        self.ptx = ptx
        self.source = source
        self._args: dict = {}

    def set_arg(self, name: str, value) -> None:
        self._args[name] = value

    def set_args(self, **kwargs) -> "Kernel":
        self._args.update(kwargs)
        return self


class CommandQueue:
    """In-order command queue with profiling enabled."""

    def __init__(self, context: Context, device: Optional[Device] = None):
        self.context = context
        self.device = device or context.device
        self.now = 0.0
        self.kernel_seconds_total = 0.0
        self.launch_count = 0
        self.last_launch: Optional[LaunchResult] = None

    # -- transfers ----------------------------------------------------------
    def enqueue_write_buffer(self, buf: Buffer, host: np.ndarray) -> Event:
        if host.nbytes > buf.nbytes:
            raise CLError("CL_INVALID_VALUE", "write larger than buffer")
        t0 = self.now
        dt = self.device.sim.upload(buf.base, host)
        self.now += dt
        return Event(t0, t0, t0, self.now)

    def enqueue_read_buffer(self, buf: Buffer, count: Optional[int] = None) -> tuple:
        count = count if count is not None else buf.nbytes // sizeof(buf.elem)
        t0 = self.now
        arr, dt = self.device.sim.download(buf.base, count, buf.elem)
        self.now += dt
        return arr, Event(t0, t0, t0, self.now)

    # -- kernel execution ------------------------------------------------------
    def enqueue_nd_range(
        self,
        kernel: Kernel,
        global_size,
        local_size,
    ) -> Event:
        """``clEnqueueNDRangeKernel``.

        OpenCL semantics: ``global_size`` counts *work-items* (NDRange),
        not blocks — one of the paper's §IV-B.1 programming-model
        differences vs CUDA's GridDim.
        """
        gs = global_size if isinstance(global_size, tuple) else (global_size, 1, 1)
        ls = local_size if isinstance(local_size, tuple) else (local_size, 1, 1)
        gs = gs + (1,) * (3 - len(gs))
        ls = ls + (1,) * (3 - len(ls))
        for g, l in zip(gs, ls):
            if l <= 0 or g % l:
                raise CLError(
                    "CL_INVALID_WORK_GROUP_SIZE",
                    f"global {gs} not divisible by local {ls}",
                )
        grid = tuple(g // l for g, l in zip(gs, ls))
        total_items = gs[0] * gs[1] * gs[2]

        args = {
            k: (v.base if isinstance(v, Buffer) else v)
            for k, v in kernel._args.items()
        }
        queued = self.now
        overhead = opencl_launch_overhead_s(total_items)
        metrics.counter("runtime.opencl.launches").inc()
        metrics.counter("runtime.opencl.launch_overhead_s").inc(overhead)
        metrics.histogram(
            "runtime.opencl.overhead_s", OVERHEAD_BUCKETS_S
        ).observe(overhead)
        start = queued + overhead
        try:
            res = self.device.sim.launch(kernel.ptx, grid, ls, args)
        except LaunchFailure as e:
            raise CLError(e.code, f"kernel {kernel.name!r}") from e
        end = start + res.kernel_seconds
        if res.profile is not None:
            p = res.profile
            p.api = "opencl"
            p.compile_s = kernel.program.build_s
            p.launch_overhead_s = overhead
            p.queued_s = queued
            p.start_s = start
            p.end_s = end
        self.now = end
        self.kernel_seconds_total += res.kernel_seconds
        self.launch_count += 1
        self.last_launch = res
        return Event(
            queued_s=queued,
            submit_s=queued,
            start_s=start,
            end_s=end,
            profile=res.profile,
        )

    def finish(self) -> None:
        """No-op: the virtual clock is already consistent."""
