"""OpenCL runtime API (simulated)."""
from .api import (
    Buffer,
    CLError,
    CommandQueue,
    Context,
    Device,
    DeviceType,
    Event,
    Kernel,
    Platform,
    Program,
    create_context_for,
    get_platforms,
)

__all__ = [
    "Buffer",
    "CLError",
    "CommandQueue",
    "Context",
    "Device",
    "DeviceType",
    "Event",
    "Kernel",
    "Platform",
    "Program",
    "create_context_for",
    "get_platforms",
]
