"""Host runtimes: CUDA (NVIDIA devices only) and OpenCL (all devices)."""
from . import cuda, opencl
from .overhead import cuda_launch_overhead_s, opencl_launch_overhead_s

__all__ = ["cuda", "opencl", "cuda_launch_overhead_s", "opencl_launch_overhead_s"]
