"""CUDA runtime API (simulated)."""
from .api import CudaContext, CudaError, CudaEvent, CudaFunction, DevicePointer

__all__ = ["CudaContext", "CudaError", "CudaEvent", "CudaFunction", "DevicePointer"]
