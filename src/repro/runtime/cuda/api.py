"""CUDA runtime API over the simulated device.

Mirrors the CUDA runtime surface the paper's benchmarks use:
``cudaMalloc``/``cudaMemcpy``/kernel launch with ``<<<grid, block>>>``
configuration, and event-based timing.  All host-visible time is a
*virtual clock*: device work, transfers, and launch overheads advance
``CudaContext.now`` deterministically, so measurements are exactly
reproducible.
"""
from __future__ import annotations

import dataclasses
import time
from typing import Mapping, Optional

import numpy as np

from ...arch.specs import DeviceSpec, GTX480
from ...compiler.nvopencc import compile_cuda
from ...errors import ReproError
from ...kir.stmt import Kernel as KirKernel
from ...kir.types import Scalar
from ...prof.profile import LaunchProfile
from ...ptx.module import PTXKernel
from ...sim.device import LaunchFailure, LaunchResult, SimDevice
from ...telemetry import metrics
from ...telemetry.metrics import OVERHEAD_BUCKETS_S
from ..overhead import cuda_launch_overhead_s

__all__ = ["CudaContext", "CudaFunction", "CudaEvent", "DevicePointer", "CudaError"]


class CudaError(ReproError):
    """A CUDA runtime error; carries the structured ``code`` when the
    underlying failure had one (e.g. a launch-time resource rejection)."""


@dataclasses.dataclass(frozen=True)
class DevicePointer:
    base: int
    nbytes: int
    elem: Scalar


@dataclasses.dataclass
class CudaEvent:
    """``cudaEvent_t``: a timestamp on the virtual timeline."""

    time_s: Optional[float] = None

    def elapsed_since(self, other: "CudaEvent") -> float:
        if self.time_s is None or other.time_s is None:
            raise CudaError("event not recorded")
        return self.time_s - other.time_s


class CudaFunction:
    """A compiled ``__global__`` function."""

    def __init__(
        self,
        ctx: "CudaContext",
        ptx: PTXKernel,
        source: KirKernel,
        compile_s: float = 0.0,
    ):
        self.ctx = ctx
        self.ptx = ptx
        self.source = source
        #: front-end compile wall time (a LaunchProfile host phase)
        self.compile_s = compile_s

    @property
    def name(self) -> str:
        return self.ptx.name

    def launch(self, grid, block, **args) -> LaunchResult:
        return self.ctx.launch(self, grid, block, args)


class CudaContext:
    """One host process talking to one CUDA device."""

    def __init__(self, spec: DeviceSpec = GTX480):
        if not spec.supports_cuda():
            raise CudaError(
                f"device {spec.name} is not CUDA-capable "
                "(CUDA is NVIDIA-only; that asymmetry is the paper's point)"
            )
        self.spec = spec
        self.device = SimDevice(spec)
        self.now = 0.0  # virtual host clock, seconds
        self.last_launch: Optional[LaunchResult] = None
        self.kernel_seconds_total = 0.0
        self.launch_count = 0

    # -- memory ------------------------------------------------------------
    def malloc(self, count: int, elem: Scalar = Scalar.F32) -> DevicePointer:
        from ...kir.types import sizeof

        nbytes = count * sizeof(elem)
        return DevicePointer(self.device.alloc(nbytes), nbytes, elem)

    def free(self, ptr: DevicePointer) -> None:
        self.device.free(ptr.base, ptr.nbytes)

    def memcpy_htod(self, ptr: DevicePointer, host: np.ndarray) -> None:
        if host.nbytes > ptr.nbytes:
            raise CudaError("htod copy larger than allocation")
        self.now += self.device.upload(ptr.base, host)

    def memcpy_dtoh(self, ptr: DevicePointer, count: Optional[int] = None) -> np.ndarray:
        from ...kir.types import sizeof

        count = count if count is not None else ptr.nbytes // sizeof(ptr.elem)
        arr, dt = self.device.download(ptr.base, count, ptr.elem)
        self.now += dt
        return arr

    # -- compilation ---------------------------------------------------------
    def compile(self, kernel: KirKernel) -> CudaFunction:
        # nvcc-style launch bounds (shared with the ABT preflight guard)
        budget = self.spec.launch_reg_budget(kernel.wg_hint)
        t0 = time.perf_counter()
        ptx = compile_cuda(kernel, max_regs=budget)
        return CudaFunction(self, ptx, kernel, time.perf_counter() - t0)

    # -- execution ------------------------------------------------------------
    def launch(self, fn: CudaFunction, grid, block, args: Mapping) -> LaunchResult:
        prepared = {
            k: (v.base if isinstance(v, DevicePointer) else v)
            for k, v in args.items()
        }
        g = grid if isinstance(grid, tuple) else (grid, 1, 1)
        b = block if isinstance(block, tuple) else (block, 1, 1)
        work_items = (
            g[0] * (g[1] if len(g) > 1 else 1) * (g[2] if len(g) > 2 else 1)
        ) * (b[0] * (b[1] if len(b) > 1 else 1) * (b[2] if len(b) > 2 else 1))
        try:
            res = self.device.launch(fn.ptx, grid, block, prepared)
        except LaunchFailure as e:
            raise CudaError(str(e), code=e.code) from e
        overhead = cuda_launch_overhead_s(work_items)
        metrics.counter("runtime.cuda.launches").inc()
        metrics.counter("runtime.cuda.launch_overhead_s").inc(overhead)
        metrics.histogram(
            "runtime.cuda.overhead_s", OVERHEAD_BUCKETS_S
        ).observe(overhead)
        if res.profile is not None:
            p = res.profile
            p.api = "cuda"
            p.compile_s = fn.compile_s
            p.launch_overhead_s = overhead
            p.queued_s = self.now
            p.start_s = self.now + overhead
            p.end_s = p.start_s + res.kernel_seconds
        self.now += overhead + res.kernel_seconds
        self.kernel_seconds_total += res.kernel_seconds
        self.launch_count += 1
        self.last_launch = res
        return res

    # -- events ------------------------------------------------------------
    def event_record(self) -> CudaEvent:
        return CudaEvent(self.now)

    def synchronize(self) -> None:
        """No-op: the virtual clock is already consistent."""

    # -- profiling ----------------------------------------------------------
    def profile_query(self) -> Optional[LaunchProfile]:
        """The last launch's profile (CUPTI-style counter readout)."""
        if self.last_launch is None:
            return None
        return self.last_launch.profile

    @property
    def profiles(self) -> list:
        """Every launch profile recorded on this context's device."""
        return self.device.profiles
