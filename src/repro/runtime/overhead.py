"""Per-runtime launch-overhead models.

§IV-B.4 of the paper: "the kernel launch time of OpenCL is longer than
that of CUDA (the gap size depends on the problem size), due to
differences in the run-time environment."  BFS invokes its kernels once
per frontier level, so this difference dominates its PR.

Both overheads have a fixed driver cost plus a small per-work-item setup
term; OpenCL's are larger (command-queue plumbing, richer argument
marshalling).  Values are calibrated to 2010-era driver measurements
(CUDA ~5 us, OpenCL ~10-20 us depending on ND-range size).
"""
from __future__ import annotations

__all__ = ["cuda_launch_overhead_s", "opencl_launch_overhead_s"]

CUDA_LAUNCH_FIXED_S = 5.0e-6
CUDA_LAUNCH_PER_ITEM_S = 0.15e-9

OPENCL_LAUNCH_FIXED_S = 10.0e-6
OPENCL_LAUNCH_PER_ITEM_S = 0.5e-9


def cuda_launch_overhead_s(total_work_items: int) -> float:
    return CUDA_LAUNCH_FIXED_S + CUDA_LAUNCH_PER_ITEM_S * total_work_items


def opencl_launch_overhead_s(total_work_items: int) -> float:
    return OPENCL_LAUNCH_FIXED_S + OPENCL_LAUNCH_PER_ITEM_S * total_work_items
