"""Architecture models: device specs, peaks, coalescing, caches, occupancy."""
from .banks import bank_conflicts
from .caches import CacheStats, LRUCache, null_cache
from .coalesce import coalesce, segments_gt200, segments_lines
from .occupancy import Occupancy, occupancy
from .peak import theoretical_bandwidth_gbs, theoretical_flops_gfs
from .specs import (
    ALL_DEVICES,
    CELLBE,
    DeviceSpec,
    GTX280,
    GTX480,
    HD5870,
    INTEL920,
    TimingParams,
    device_by_name,
)

__all__ = [
    "bank_conflicts",
    "CacheStats",
    "LRUCache",
    "null_cache",
    "coalesce",
    "segments_gt200",
    "segments_lines",
    "Occupancy",
    "occupancy",
    "theoretical_bandwidth_gbs",
    "theoretical_flops_gfs",
    "ALL_DEVICES",
    "DeviceSpec",
    "TimingParams",
    "GTX480",
    "GTX280",
    "HD5870",
    "INTEL920",
    "CELLBE",
    "device_by_name",
]
