"""Theoretical peak calculators — Equations (2) and (3) of the paper.

.. math::

    TP_{BW}    = MC \\cdot (MIW/8) \\cdot 2 \\cdot 10^{-9}  \\ [GB/s]

    TP_{FLOPS} = CC \\cdot \\#Cores \\cdot R \\cdot 10^{-9}  \\ [GFlops/s]

where ``MC`` is the memory clock (DDR doubling applied by the factor 2),
``MIW`` the memory interface width in bits, ``CC`` the core clock and
``R`` the per-core per-cycle flop count (3 on GT200 via dual-issued
mul+mad, 2 on Fermi).
"""
from __future__ import annotations

from .specs import DeviceSpec

__all__ = ["theoretical_bandwidth_gbs", "theoretical_flops_gfs"]


def theoretical_bandwidth_gbs(spec: DeviceSpec) -> float:
    """Equation (2): theoretical peak bandwidth in GB/s."""
    return spec.mem_clock_mhz * 1e6 * (spec.miw_bits / 8) * 2 * 1e-9


def theoretical_flops_gfs(spec: DeviceSpec) -> float:
    """Equation (3): theoretical peak GFlops/s."""
    return (
        spec.core_clock_mhz * 1e6 * spec.cores * spec.flops_per_core_cycle * 1e-9
    )
