"""Occupancy calculator: resident blocks/warps per compute unit.

The same arithmetic as NVIDIA's occupancy spreadsheet: resident blocks
are limited by the register file, shared memory, the thread ceiling and
the block ceiling.  Active warps feed the timing model's latency-hiding
term — which is how register spills (compiler!) become performance
(architecture), the coupling the paper's Fig. 7 exercises.
"""
from __future__ import annotations

import dataclasses

from .specs import DeviceSpec

__all__ = ["Occupancy", "occupancy"]


@dataclasses.dataclass(frozen=True)
class Occupancy:
    blocks_per_cu: int
    warps_per_cu: int
    active_threads_per_cu: int
    limiter: str

    @property
    def occupancy_fraction(self) -> float:
        return self.blocks_per_cu and 1.0  # informational; see warps_per_cu


def occupancy(
    spec: DeviceSpec,
    threads_per_block: int,
    regs_per_thread: int,
    shared_per_block: int,
) -> Occupancy:
    threads_per_block = max(1, threads_per_block)
    limits = {
        "blocks": spec.max_blocks_per_cu,
        "threads": spec.max_threads_per_cu // threads_per_block,
    }
    if regs_per_thread > 0:
        limits["registers"] = spec.regfile_per_cu // (
            regs_per_thread * threads_per_block
        )
    if shared_per_block > 0:
        limits["shared"] = spec.shared_mem_per_cu // shared_per_block
    limiter = min(limits, key=limits.get)
    blocks = max(0, min(limits.values()))
    warps = blocks * -(-threads_per_block // spec.warp_width)
    return Occupancy(
        blocks_per_cu=blocks,
        warps_per_cu=warps,
        active_threads_per_cu=blocks * threads_per_block,
        limiter=limiter if blocks else "does-not-fit",
    )
