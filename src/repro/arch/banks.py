"""Shared-memory bank-conflict model.

GT200 resolves shared accesses per half-warp over 16 banks of 4 bytes;
Fermi per full warp over 32 banks.  The cost of a warp shared access is
its worst per-bank replay count (same-address broadcast is free).
"""
from __future__ import annotations

import numpy as np

from .specs import DeviceSpec

__all__ = ["bank_conflicts"]


def _conflicts(addrs: np.ndarray, banks: int) -> int:
    if addrs.size == 0:
        return 0
    # distinct words per bank (same word broadcasts): one unique pass
    # plus a bincount instead of a Python loop over the banks
    words = np.unique(addrs // 4)
    counts = np.bincount((words % banks).astype(np.intp))
    return max(1, int(counts.max()))


def bank_conflicts(spec: DeviceSpec, addrs: np.ndarray) -> int:
    """Replay factor (>= 1) for one warp's shared-memory access."""
    if spec.architecture == "gt200":
        worst = 1
        for lo in range(0, addrs.size, 16):
            worst = max(worst, _conflicts(addrs[lo : lo + 16], 16))
        return worst
    if spec.architecture in ("fermi", "cypress"):
        return _conflicts(addrs, 32)
    return 1  # CPU / Cell: no banked SRAM semantics
