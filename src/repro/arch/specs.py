"""Device specifications and timing parameters.

The five devices of the paper (Tables III/IV):

* **GTX480** — Fermi: true cache hierarchy (L1/L2), R=2 (mad-only issue)
* **GTX280** — GT200: no global-memory cache, R=3 (dual-issue mul+mad)
* **HD5870** — Cypress: VLIW5, wavefront width 64
* **Intel920** — Core i7 920 as an OpenCL CPU device (AMD APP v2.2)
* **Cell/BE** — accelerator device with tight local-store/register limits

Every *calibrated* constant is annotated with the paper observation it
was fitted against.  Mechanistic constants (clocks, widths, counts) come
from Table IV / vendor documents.  Changing calibration constants moves
magnitudes, not directions: directional results come from mechanism
(caches, coalescing, launch overhead, compiler output).
"""
from __future__ import annotations

import dataclasses

__all__ = ["TimingParams", "DeviceSpec", "GTX480", "GTX280", "HD5870", "INTEL920", "CELLBE", "ALL_DEVICES", "device_by_name"]


@dataclasses.dataclass(frozen=True)
class TimingParams:
    """Cost model constants, in core-clock cycles unless noted."""

    #: cycles for one warp-wide simple ALU instruction (lanes / ALUs per CU)
    alu_cycles: float
    #: multiplier for transcendental / special-function ops (SFU pressure)
    sfu_factor: float = 8.0
    #: multiplier for integer div/rem (emulated, many-cycle)
    idiv_factor: float = 16.0
    #: fraction of mul issue slots co-issued for free next to a mad
    #: (GT200 dual-issue; calibrated against Fig. 2's 71.5% of R=3 peak)
    dual_issue_efficiency: float = 0.0
    #: efficiency of the ALU issue pipeline (ramp, scheduler stalls);
    #: calibrated against Fig. 2 achieved-peak fractions
    alu_efficiency: float = 1.0
    #: DRAM round-trip latency for a global access
    dram_latency: float = 420.0
    #: additional cycles per extra memory transaction in one warp access
    tx_cycles: float = 32.0
    #: fraction of theoretical bandwidth reachable by a perfectly
    #: coalesced stream (calibrated against Fig. 1: 68.6% / 87.7%)
    dram_efficiency: float = 0.8
    #: shared/local-memory access latency and per-conflict serialization
    shared_latency: float = 24.0
    #: constant-cache hit latency (broadcast) and texture-cache hit latency
    const_hit: float = 8.0
    tex_hit: float = 40.0
    #: L1/L2 hit latencies (Fermi-style hierarchies only)
    l1_hit: float = 28.0
    l2_hit: float = 120.0
    #: memory-level parallelism cap: outstanding warp-memory requests a CU
    #: can overlap (a Hong–Kim-style MWP bound)
    mwp_cap: float = 12.0
    #: relative cost of a register-to-register ``mov``: ptxas folds most
    #: of them away by renaming during SASS generation, which is why the
    #: mov-heavy CUDA PTX of Table V still runs fast
    reg_mov_factor: float = 0.05
    #: imperfect compute/memory overlap: the smaller stream leaks this
    #: fraction into total time (calibrated against Fig. 1's CUDA-vs-
    #: OpenCL bandwidth deltas of 8.5% / 2.4%: the mov-richer CUDA stream
    #: costs a few percent even when memory-bound)
    overlap_leak: float = 0.12
    #: fixed per-launch pipeline ramp on the device (microseconds)
    ramp_us: float = 2.0
    #: DRAM partition-camping model: accesses from the whole device to
    #: one 256B region serialize at this many cycles each once the
    #: region is hot (GT200's famous pathology; Fermi's L2 absorbs it).
    #: Calibrated against Fig. 8's 4x constant-memory win on GTX280.
    partition_service_cycles: float = 0.0
    #: accesses per region per launch before contention kicks in
    partition_hot_threshold: float = 256.0


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    name: str
    vendor: str
    device_type: str  # "gpu" | "cpu" | "accelerator"
    architecture: str  # "gt200" | "fermi" | "cypress" | "x86" | "cell"
    compute_units: int
    cores: int  # scalar cores / PEs total
    core_clock_mhz: float
    mem_clock_mhz: float
    miw_bits: int  # memory interface width
    mem_capacity_mb: int
    warp_width: int
    #: R of Eq. 3: max flops per scalar core per cycle
    flops_per_core_cycle: float
    # resource limits (occupancy + Table VI failure modes)
    max_regs_per_thread: int
    regfile_per_cu: int
    shared_mem_per_cu: int
    max_shared_per_block: int
    max_threads_per_block: int
    max_threads_per_cu: int
    max_blocks_per_cu: int
    # cache hierarchy
    has_global_cache: bool  # Fermi L1/L2 over plain global loads
    l1_bytes: int
    l2_bytes: int
    tex_cache_bytes: int
    const_cache_bytes: int
    line_bytes: int
    # host-side transfer
    pcie_gbps: float
    timing: TimingParams = dataclasses.field(default_factory=lambda: TimingParams(4.0))
    #: True when explicit local-memory staging is just an extra copy
    #: (CPU devices: "all OpenCL memory objects for CPU are cached
    #: implicitly by hardware" — paper §V / TranP observation)
    local_mem_is_plain_memory: bool = False

    @property
    def cores_per_cu(self) -> int:
        return self.cores // self.compute_units

    def core_clock_hz(self) -> float:
        return self.core_clock_mhz * 1e6

    def supports_cuda(self) -> bool:
        return self.vendor == "NVIDIA"

    def launch_reg_budget(self, wg_hint: int) -> int:
        """Per-thread register budget the front ends compile against.

        nvcc-style launch bounds: the budget respects both the hard
        per-thread ceiling and the register file at the kernel's
        intended block size.  Shared by both runtimes *and* by the
        sweep engine's ABT preflight guard, so a preflight verdict is
        computed against exactly the registers the real build gets.
        """
        return min(
            self.max_regs_per_thread,
            max(16, self.regfile_per_cu // max(wg_hint, 32)),
        )


GTX480 = DeviceSpec(
    name="GTX480",
    vendor="NVIDIA",
    device_type="gpu",
    architecture="fermi",
    compute_units=15,  # Table IV lists 60 dispatch units; 15 SMs x 32 cores
    cores=480,
    core_clock_mhz=1401.0,
    mem_clock_mhz=1848.0,
    miw_bits=384,
    mem_capacity_mb=1536,
    warp_width=32,
    flops_per_core_cycle=2.0,  # mad-only issue (paper §IV-A.2)
    max_regs_per_thread=63,
    regfile_per_cu=32768,
    shared_mem_per_cu=49152,
    max_shared_per_block=49152,
    max_threads_per_block=1024,
    max_threads_per_cu=1536,
    max_blocks_per_cu=8,
    has_global_cache=True,
    l1_bytes=16384,
    l2_bytes=786432,
    tex_cache_bytes=12288,
    const_cache_bytes=8192,
    line_bytes=128,
    pcie_gbps=5.2,
    timing=TimingParams(
        alu_cycles=1.0,
        tex_hit=18.0,  # dedicated texture pipeline beats L1 for gathers (Fig. 4)
        dual_issue_efficiency=0.0,
        alu_efficiency=0.985,  # Fig. 2: 97.7% of TP_FLOPS reached
        dram_latency=360.0,
        tx_cycles=24.0,
        dram_efficiency=0.95,  # Fig. 1: 87.7% of TP_BW (OpenCL)
        mwp_cap=24.0,
        overlap_leak=0.05,  # Fig. 1: CUDA only 2.4% behind on Fermi
        ramp_us=0.5,
    ),
)

GTX280 = DeviceSpec(
    name="GTX280",
    vendor="NVIDIA",
    device_type="gpu",
    architecture="gt200",
    compute_units=30,
    cores=240,
    core_clock_mhz=1296.0,
    mem_clock_mhz=1107.0,
    miw_bits=512,
    mem_capacity_mb=1024,
    warp_width=32,
    flops_per_core_cycle=3.0,  # dual-issue mul+mad (paper §IV-A.2)
    max_regs_per_thread=124,
    regfile_per_cu=16384,
    shared_mem_per_cu=16384,
    max_shared_per_block=16384,
    max_threads_per_block=512,
    max_threads_per_cu=1024,
    max_blocks_per_cu=8,
    has_global_cache=False,  # the crux of the Sobel result (Fig. 8)
    l1_bytes=0,
    l2_bytes=0,
    tex_cache_bytes=8192,
    const_cache_bytes=8192,
    line_bytes=64,
    pcie_gbps=5.0,
    timing=TimingParams(
        alu_cycles=4.0,  # 8 cores/SM, warp of 32
        dual_issue_efficiency=0.70,  # Fig. 2: 71.5% of R=3 peak
        alu_efficiency=0.97,
        dram_latency=480.0,
        tx_cycles=36.0,
        dram_efficiency=0.80,  # Fig. 1: 68.6% of TP_BW (OpenCL)
        mwp_cap=16.0,
        overlap_leak=0.16,  # Fig. 1: CUDA 8.5% behind on GT200
        ramp_us=1.0,
        partition_service_cycles=6.0,  # Fig. 8: ~4x from constant memory
    ),
)

HD5870 = DeviceSpec(
    name="HD5870",
    vendor="AMD",
    device_type="gpu",
    architecture="cypress",
    compute_units=20,
    cores=1600,  # Table IV: 1600 processing elements (320 VLIW5 cores)
    core_clock_mhz=850.0,
    mem_clock_mhz=1200.0,
    miw_bits=256,
    mem_capacity_mb=1024,
    warp_width=64,  # wavefront size — the RdxS "FL" mechanism (Table VI)
    flops_per_core_cycle=2.0,
    max_regs_per_thread=124,
    regfile_per_cu=16384,
    shared_mem_per_cu=32768,
    max_shared_per_block=32768,
    max_threads_per_block=256,
    max_threads_per_cu=1024,
    max_blocks_per_cu=8,
    has_global_cache=False,
    l1_bytes=0,
    l2_bytes=0,
    tex_cache_bytes=8192,
    const_cache_bytes=8192,
    line_bytes=64,
    pcie_gbps=5.0,
    timing=TimingParams(
        alu_cycles=0.8,  # 80 lanes/CU, wavefront 64; VLIW5 packing ~62%
        dual_issue_efficiency=0.0,
        alu_efficiency=0.62,  # VLIW packing on scalar kernels
        dram_latency=500.0,
        tx_cycles=40.0,
        dram_efficiency=0.70,
        mwp_cap=10.0,
        overlap_leak=0.12,
    ),
)

INTEL920 = DeviceSpec(
    name="Intel920",
    vendor="Intel",
    device_type="cpu",
    architecture="x86",
    compute_units=4,
    cores=16,  # 4 cores x SSE width 4 (APP v2.2 maps lanes to SSE)
    core_clock_mhz=2670.0,
    mem_clock_mhz=1333.0,
    miw_bits=192,
    mem_capacity_mb=6144,
    warp_width=4,
    flops_per_core_cycle=2.0,
    max_regs_per_thread=256,
    regfile_per_cu=1 << 20,
    shared_mem_per_cu=1 << 20,
    max_shared_per_block=1 << 20,
    max_threads_per_block=1024,
    max_threads_per_cu=1024,
    max_blocks_per_cu=64,
    has_global_cache=True,
    l1_bytes=32768,
    l2_bytes=8 << 20,
    tex_cache_bytes=0,
    const_cache_bytes=32768,
    line_bytes=64,
    pcie_gbps=0.0,  # host == device; transfers are memcpy
    timing=TimingParams(
        alu_cycles=1.0,
        sfu_factor=12.0,
        dual_issue_efficiency=0.0,
        alu_efficiency=0.55,  # work-item emulation overhead of APP on CPU
        dram_latency=180.0,
        tx_cycles=20.0,
        dram_efficiency=0.55,  # ~18 GB/s of triple-channel DDR3
        shared_latency=220.0,  # APP marshals "local memory" through heap
        # copies; the paper's TranP drops 2.411 -> 0.215 GB/s because of it
        mwp_cap=4.0,
        overlap_leak=0.3,
        ramp_us=15.0,  # thread-pool wakeup
    ),
    local_mem_is_plain_memory=True,
)

CELLBE = DeviceSpec(
    name="Cell/BE",
    vendor="IBM",
    device_type="accelerator",
    architecture="cell",
    compute_units=8,  # SPEs
    cores=32,  # 8 SPEs x 4-wide SIMD
    core_clock_mhz=3200.0,
    mem_clock_mhz=800.0,
    miw_bits=128,
    mem_capacity_mb=256,
    warp_width=4,
    flops_per_core_cycle=2.0,
    # tight limits: the source of the "ABT" rows in Table VI
    # (scan/MxM at 2 KB shared fit exactly; FFT/DXTC/RdxS/STNW do not)
    max_regs_per_thread=64,
    regfile_per_cu=8192,
    shared_mem_per_cu=2048,
    max_shared_per_block=2048,
    max_threads_per_block=256,
    max_threads_per_cu=256,
    max_blocks_per_cu=1,
    has_global_cache=False,
    l1_bytes=0,
    l2_bytes=0,
    tex_cache_bytes=0,
    const_cache_bytes=4096,
    line_bytes=128,
    pcie_gbps=2.0,
    timing=TimingParams(
        alu_cycles=1.0,
        sfu_factor=20.0,
        dual_issue_efficiency=0.0,
        alu_efficiency=0.30,  # OpenCL-over-SPE emulation (IBM SDK alpha)
        dram_latency=600.0,
        tx_cycles=60.0,
        dram_efficiency=0.35,
        shared_latency=8.0,  # local store is genuinely fast...
        mwp_cap=2.0,
        overlap_leak=0.4,
        ramp_us=60.0,  # SPE context upload
    ),
)

ALL_DEVICES = {d.name: d for d in (GTX480, GTX280, HD5870, INTEL920, CELLBE)}


def device_by_name(name: str) -> DeviceSpec:
    try:
        return ALL_DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(ALL_DEVICES)}"
        ) from None
