"""Cache models: texture cache, constant cache, Fermi L1/L2.

Set-associative LRU caches over *line base addresses* (the coalescer has
already resolved lane addresses into segments).  The architectural story
these implement:

* GT200 has **no** cache over plain global loads — its only cached read
  paths are the constant cache (broadcast, per-SM) and the texture cache
  (spatial reuse for irregular gathers).  This is why the paper's Sobel
  flips between GPUs (Fig. 8) and why texture memory matters so much for
  MD/SPMV (Fig. 4).
* Fermi adds a real L1/L2 hierarchy over global loads, which levels the
  constant-memory difference and halves texture's advantage.
"""
from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["LRUCache", "CacheStats", "null_cache"]


class CacheStats:
    __slots__ = ("hits", "misses")

    def __init__(self, hits: int = 0, misses: int = 0) -> None:
        self.hits = hits
        self.misses = misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        a = self.accesses
        return self.hits / a if a else 0.0

    # -- per-launch accounting (the profiler's snapshot/delta protocol) --
    def snapshot(self) -> tuple[int, int]:
        return (self.hits, self.misses)

    def since(self, snap: tuple[int, int]) -> "CacheStats":
        """Counters accrued after ``snap`` (one launch's worth)."""
        return CacheStats(self.hits - snap[0], self.misses - snap[1])

    def add(self, other: "CacheStats") -> "CacheStats":
        self.hits += other.hits
        self.misses += other.misses
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheStats(hits={self.hits}, misses={self.misses})"


class LRUCache:
    """Set-associative LRU cache keyed by line base address."""

    def __init__(self, capacity_bytes: int, line_bytes: int, ways: int = 4):
        self.line = max(line_bytes, 1)
        self.ways = ways
        self.sets = max(1, capacity_bytes // (self.line * ways))
        # sets materialize on first touch: sweeps build thousands of
        # cache banks and most sets of a short launch stay cold
        self._data: dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def access(self, base: int) -> bool:
        """Touch one line; True on hit.  Misses fill the line."""
        line_id = base // self.line
        si = line_id % self.sets
        s = self._data.get(si)
        if s is None:
            s = self._data[si] = OrderedDict()
        if line_id in s:
            s.move_to_end(line_id)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        s[line_id] = True
        if len(s) > self.ways:
            s.popitem(last=False)
        return False

    def access_many(self, bases: np.ndarray) -> int:
        """Touch several lines; returns the number of hits."""
        return sum(1 for b in bases.tolist() if self.access(b))

    def invalidate(self) -> None:
        self._data.clear()


class _NullCache:
    """Cache-less read path (GT200 global loads): everything misses."""

    line = 1

    def __init__(self) -> None:
        self.stats = CacheStats()

    def access(self, base: int) -> bool:
        self.stats.misses += 1
        return False

    def access_many(self, bases: np.ndarray) -> int:
        self.stats.misses += int(bases.size)
        return 0

    def invalidate(self) -> None:  # pragma: no cover - nothing to clear
        pass


def null_cache() -> _NullCache:
    return _NullCache()
