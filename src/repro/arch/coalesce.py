"""Global-memory coalescing rules.

GT200 (compute 1.x, the paper's GTX280): each *half-warp* independently
coalesces into aligned segments; the hardware shrinks the transaction to
64B or 32B when the touched bytes fit in an aligned sub-segment —
mirroring the compute-1.2/1.3 coalescer.  Fermi (GTX480): the full
warp's accesses resolve into the set of distinct 128-byte cache lines.

The returned segment bases feed the cache models; the byte total feeds
the DRAM bandwidth bound; the segment count is the classic
"transactions per request" metric.  Vectorized with numpy — this runs
once per executed warp memory instruction and is the hottest
architectural function in the simulator.
"""
from __future__ import annotations

import numpy as np

from .specs import DeviceSpec

__all__ = ["coalesce", "segments_gt200", "segments_lines"]


def segments_lines(
    addrs: np.ndarray, sizes: np.ndarray, line: int
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct cache lines touched by the active lanes (Fermi rule).

    Returns ``(line_bases, widths)`` with every width equal to ``line``.
    """
    if addrs.size == 0:
        return addrs.astype(np.int64), addrs.astype(np.int64)
    first = addrs // line
    last = (addrs + np.maximum(sizes, 1) - 1) // line
    counts = last - first + 1
    if int(counts.max()) == 1:
        lines = np.unique(first)
    else:
        # an access may span three or more lines: enumerate the whole
        # first..last range per lane, not just its end points
        total = int(counts.sum())
        starts = np.repeat(first, counts)
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        lines = np.unique(starts + offs)
    bases = lines * line
    return bases, np.full(bases.shape, line, dtype=np.int64)


def _fits(first: int, last: int, width: int) -> int | None:
    """Aligned ``width``-byte window containing [first, last), or None."""
    base = (first // width) * width
    return base if last <= base + width else None


def segments_gt200(
    addrs: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """GT200 half-warp segment rule with segment-size reduction.

    Returns ``(segment_bases, segment_widths)``; each half-warp issues
    its own transactions even when they overlap another half-warp's.
    Scalar Python on purpose: half-warps are at most 16 elements and
    numpy per-call overhead dominates at that size.
    """
    bases: list[int] = []
    widths: list[int] = []
    al = addrs.tolist()
    sl = sizes.tolist()
    n = len(al)
    for lo in range(0, n, 16):
        a = al[lo : lo + 16]
        ends = [
            x + (s if s > 1 else 1) for x, s in zip(a, sl[lo : lo + 16])
        ]
        # an access that straddles a 128B boundary touches every segment
        # in its first..last range; clip it into per-segment pieces so
        # the trailing bytes are not dropped
        touched: set = set()
        for x, e in zip(a, ends):
            f, l = x >> 7, (e - 1) >> 7
            if l - f > 1:  # huge accesses (> 128B) span interior segments
                touched.update(range(f, l + 1))
            else:
                touched.add(f)
                touched.add(l)
        for seg in sorted(touched):
            base = seg << 7
            top = base + 128
            first = top
            last = base
            for x, e in zip(a, ends):
                if x < top and e > base:
                    if x < first:
                        first = x
                    if e > last:
                        last = e
            if first < base:
                first = base
            if last > top:
                last = top
            width = 128
            start = base
            for smaller in (64, 32):
                fit = (first // smaller) * smaller
                if last > fit + smaller:
                    break
                width, start = smaller, fit
            bases.append(start)
            widths.append(width)
    return (
        np.asarray(bases, dtype=np.int64),
        np.asarray(widths, dtype=np.int64),
    )


def coalesce(
    spec: DeviceSpec, addrs: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, int]:
    """Resolve one warp's global access into ``(segment_bases, bytes)``."""
    if spec.architecture == "gt200":
        bases, widths = segments_gt200(addrs, sizes)
    else:
        bases, widths = segments_lines(addrs, sizes, spec.line_bytes)
    return bases, int(widths.sum()) if bases.size else 0
