"""Merged chrome-trace export: engine spans + simulated kernel time.

Extends the Trace Event Format exporter of :mod:`repro.prof.trace` from
single-benchmark launch timelines to whole runs: one ``trace.json``
(loadable in chrome://tracing / Perfetto) showing engine scheduling,
cache I/O, retries/backoff, injected faults, and the simulator's
virtual kernel time on a single timeline.

Mapping:

* every finished :class:`~repro.telemetry.spans.Span` becomes a
  ``ph: "X"`` complete slice; its category picks the display thread
  (engine scheduling, cache I/O, units, simulated launches);
* every :class:`~repro.telemetry.spans.Instant` becomes a ``ph: "i"``
  instant event — faults and retries show as markers on the row of the
  span they interrupted;
* timestamps are wall-clock microseconds rebased to the run start, so
  the earliest event sits at t=0 like the per-launch traces.

Simulated kernel spans are recorded by the engine itself (it re-anchors
each unit's virtual-clock launch profile at the wall time the unit
started executing), so this module only needs to lay events out.
"""
from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = ["trace_events", "chrome_trace", "write_trace"]

_US = 1e6

#: span category -> (tid, human row name); unknown categories land on
#: the engine row rather than vanishing
_ROWS = {
    "run": (1, "run"),
    "engine": (2, "engine scheduling"),
    "pool": (3, "worker pool"),
    "unit": (4, "work units"),
    "cache": (5, "cache I/O"),
    "launch": (6, "simulated launches"),
    "fault": (7, "faults"),
    "log": (8, "diagnostics"),
}
_DEFAULT_ROW = _ROWS["engine"]


def _tid(cat: str) -> int:
    return _ROWS.get(cat, _DEFAULT_ROW)[0]


def trace_events(events: Iterable, process_name: str = "repro run") -> list:
    """Convert tracer events (Span/Instant or their dicts) to trace events."""
    evs = [e.as_dict() if hasattr(e, "as_dict") else dict(e) for e in events]
    if not evs:
        return []
    t_base = min(e["t0"] if e.get("kind") != "instant" else e["ts"] for e in evs)
    out: list = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, row in sorted(set(_ROWS.values())):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": row},
            }
        )
    for e in evs:
        attrs = dict(e.get("attrs") or {})
        if e.get("kind") == "instant":
            out.append(
                {
                    "name": e["name"],
                    "cat": e["cat"],
                    "ph": "i",
                    "s": "t",  # thread-scoped marker
                    "pid": 1,
                    "tid": _tid(e["cat"]),
                    "ts": (e["ts"] - t_base) * _US,
                    "args": attrs,
                }
            )
            continue
        t0 = e["t0"]
        t1 = e["t1"] if e["t1"] is not None else t0
        attrs.setdefault("span_id", e["span_id"])
        if e.get("parent_id"):
            attrs.setdefault("parent_id", e["parent_id"])
        out.append(
            {
                "name": e["name"],
                "cat": e["cat"],
                "ph": "X",
                "pid": 1,
                "tid": _tid(e["cat"]),
                "ts": (t0 - t_base) * _US,
                "dur": max(t1 - t0, 1e-9) * _US,
                "args": attrs,
            }
        )
    return out


def chrome_trace(events: Iterable, process_name: str = "repro run") -> dict:
    return {
        "traceEvents": trace_events(events, process_name),
        "displayTimeUnit": "ms",
    }


def write_trace(
    events: Iterable, path: str, process_name: Optional[str] = None
) -> str:
    """Serialize the merged run trace to ``path``; returns the path."""
    with open(path, "w") as f:
        json.dump(chrome_trace(events, process_name or "repro run"), f, indent=1)
    return path
