"""Structured, level-gated diagnostics for the whole stack.

Replaces the bare ``print(..., file=sys.stderr)`` calls that used to
interleave into garbage under ``--jobs N``: every message is rendered
to a *single* line and written with one ``stream.write`` call under a
process-local lock, so concurrent emitters (pool callbacks, the
progress thread) cannot shear each other mid-line.

Messages are events with fields::

    log.warn("cache.quarantine", entry=name, reason=reason)
    # -> repro[warn] cache.quarantine: entry=... reason=...

Every emitted event is also mirrored onto the active span tracer (when
one is installed), so the JSONL event log and the chrome trace carry
the same diagnostics the console showed.

Verbosity: ``error`` < ``warn`` < ``info`` < ``debug``.  The default
threshold is ``info``; CLI ``--quiet`` raises it to ``error``,
``--verbose`` lowers it to ``debug``.
"""
from __future__ import annotations

import sys
import threading
from typing import Optional

from . import spans

__all__ = [
    "LEVELS",
    "set_level",
    "set_verbosity",
    "level",
    "log",
    "debug",
    "info",
    "warn",
    "error",
]

LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}

_threshold = LEVELS["info"]
_lock = threading.Lock()


def set_level(name: str) -> None:
    global _threshold
    _threshold = LEVELS[name]


def level() -> str:
    for name, v in LEVELS.items():
        if v == _threshold:
            return name
    return str(_threshold)


def set_verbosity(quiet: bool = False, verbose: bool = False) -> None:
    """Map the CLI ``--quiet``/``--verbose`` pair onto a threshold."""
    set_level("error" if quiet else ("debug" if verbose else "info"))


def _render(v) -> str:
    s = str(v)
    if " " in s or not s:
        return repr(s)
    return s


def log(lvl: str, event: str, _msg: Optional[str] = None, **fields) -> None:
    """Emit one structured diagnostic line (and a tracer instant event).

    ``_msg`` is an optional free-text tail kept for messages the test
    suite (and humans) match on; fields render as ``key=value`` pairs.
    """
    spans.event(f"log.{event}", cat="log", level=lvl, msg=_msg or "", **fields)
    if LEVELS[lvl] < _threshold:
        return
    parts = [f"repro[{lvl}] {event}:"]
    if _msg:
        parts.append(_msg)
    parts += [f"{k}={_render(v)}" for k, v in fields.items()]
    line = " ".join(parts) + "\n"
    with _lock:
        try:
            sys.stderr.write(line)
            sys.stderr.flush()
        except (OSError, ValueError):  # closed stream at interpreter exit
            pass


def debug(event: str, _msg: Optional[str] = None, **fields) -> None:
    log("debug", event, _msg, **fields)


def info(event: str, _msg: Optional[str] = None, **fields) -> None:
    log("info", event, _msg, **fields)


def warn(event: str, _msg: Optional[str] = None, **fields) -> None:
    log("warn", event, _msg, **fields)


def error(event: str, _msg: Optional[str] = None, **fields) -> None:
    log("error", event, _msg, **fields)
