"""repro.telemetry — the run-level observability layer.

Four cooperating pieces (see DESIGN.md §"Telemetry"):

* :mod:`~repro.telemetry.spans` — hierarchical span tracing
  (``sweep -> unit -> attempt -> launch``) with cross-process
  propagation over the engine's ok/err payload protocol;
* :mod:`~repro.telemetry.metrics` — a process-wide registry of
  counters, gauges, and fixed-bucket histograms whose merge is
  deterministic whatever the execution order;
* :mod:`~repro.telemetry.log` — single-line structured diagnostics
  (the replacement for bare ``print`` under ``--jobs N``);
* :mod:`~repro.telemetry.manifest` — :class:`RunManifest`, the
  diffable end-of-run provenance record;

plus :mod:`~repro.telemetry.progress` (TTY-gated live sweep meter) and
:mod:`~repro.telemetry.export` (merged chrome-trace writer).

The whole layer is pay-for-what-you-use: with no tracer installed,
spans are no-ops; metric bumps are a dict hit and a float add.
"""
from __future__ import annotations

from . import log
from .cli import add_telemetry_arguments, finish_run, progress_mode, start_run
from .export import chrome_trace, trace_events, write_trace
from .manifest import RunManifest, default_manifest_path, git_sha
from .metrics import (
    FSYNC_BUCKETS_S,
    OVERHEAD_BUCKETS_S,
    TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
    use_registry,
)
from .progress import ProgressLine
from .spans import (
    Instant,
    Span,
    Tracer,
    current_span_id,
    event,
    span,
    traced,
    tracer,
    use_tracer,
    worker_tracer,
)

__all__ = [
    "log",
    "add_telemetry_arguments",
    "start_run",
    "finish_run",
    "progress_mode",
    "Span",
    "Instant",
    "Tracer",
    "tracer",
    "use_tracer",
    "span",
    "event",
    "traced",
    "current_span_id",
    "worker_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS_S",
    "OVERHEAD_BUCKETS_S",
    "FSYNC_BUCKETS_S",
    "registry",
    "use_registry",
    "counter",
    "gauge",
    "histogram",
    "RunManifest",
    "git_sha",
    "default_manifest_path",
    "ProgressLine",
    "trace_events",
    "chrome_trace",
    "write_trace",
]
