"""A live sweep progress meter with TTY, plain, and off modes.

Three modes (``--progress=auto|plain|off``):

* ``auto`` (default) — renders ``units done/total, hits, failures,
  ETA`` over itself with ``\\r`` on an interactive terminal; when
  stderr is not a TTY (CI, ``2>log``, pipes) it emits *nothing*, so
  captured logs and golden outputs stay clean.
* ``plain`` — periodic full progress *lines* (newline-terminated, one
  every few seconds) whatever the stream is, so CI logs show a sweep
  advancing instead of going silent for minutes.
* ``off`` — nothing, ever.

ETA comes from the rolling mean of recent per-unit completion times
(window of 32), which tracks warm/cold phase changes much faster than
a global mean.

Thread-safe: the parallel engine ticks it from pool done-callbacks.
"""
from __future__ import annotations

import sys
import threading
import time
from typing import Optional

__all__ = ["ProgressLine", "MODES"]

#: accepted progress modes, in CLI order
MODES = ("auto", "plain", "off")

#: default repaint gap per mode: TTY repaints are cheap, plain lines
#: accumulate in logs so they are rationed much harder
_DEFAULT_INTERVAL_S = {"auto": 0.1, "plain": 5.0}


class ProgressLine:
    """One status line, ``\\r``-refreshed (auto/TTY) or appended (plain)."""

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream=None,
        force: Optional[bool] = None,
        window: int = 32,
        min_interval_s: Optional[float] = None,
        mode: str = "auto",
    ):
        if mode not in MODES:
            raise ValueError(f"unknown progress mode {mode!r}; one of {MODES}")
        self.total = int(total)
        self.label = label
        self.mode = mode
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", lambda: False)
        if mode == "off":
            self.enabled = False
        elif mode == "plain":
            self.enabled = True if force is None else bool(force)
        else:
            self.enabled = bool(isatty()) if force is None else bool(force)
        self._min_interval = (
            min_interval_s if min_interval_s is not None
            else _DEFAULT_INTERVAL_S.get(mode, 0.1)
        )
        self.done = 0
        self.hits = 0
        self.failures = 0
        self._durations: list = []
        self._window = window
        self._last_paint = 0.0
        self._t_start = time.time()
        self._lock = threading.Lock()
        self._width = 0

    # -- updates -----------------------------------------------------------
    def tick(
        self,
        hit: bool = False,
        failed: bool = False,
        seconds: Optional[float] = None,
    ) -> None:
        """Record one finished unit (thread-safe) and maybe repaint."""
        if not self.enabled:
            return
        with self._lock:
            self.done += 1
            self.hits += hit
            self.failures += failed
            if seconds is not None:
                self._durations.append(seconds)
                if len(self._durations) > self._window:
                    del self._durations[: -self._window]
            now = time.time()
            if (
                now - self._last_paint >= self._min_interval
                or self.done >= self.total
            ):
                self._last_paint = now
                self._paint()

    def note_failure(self) -> None:
        """Bump the failure count without advancing ``done`` (the unit's
        completion still arrives through :meth:`tick`)."""
        if not self.enabled:
            return
        with self._lock:
            self.failures += 1

    def eta_s(self) -> Optional[float]:
        """Remaining seconds from the rolling per-unit mean (None = unknown)."""
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if self._durations:
            mean = sum(self._durations) / len(self._durations)
        elif self.done:
            mean = (time.time() - self._t_start) / self.done
        else:
            return None
        return mean * remaining

    # -- painting ----------------------------------------------------------
    def _fmt_eta(self) -> str:
        eta = self.eta_s()
        if eta is None:
            return "--"
        if eta >= 3600:
            return f"{eta / 3600:.1f}h"
        if eta >= 60:
            return f"{eta / 60:.1f}m"
        return f"{eta:.0f}s"

    def _paint(self) -> None:
        line = (
            f"{self.label}: {self.done}/{self.total} units"
            f"  {self.hits} hit(s)  {self.failures} failed"
            f"  ETA {self._fmt_eta()}"
        )
        try:
            if self.mode == "plain":
                self.stream.write(line + "\n")
            else:
                pad = " " * max(0, self._width - len(line))
                self._width = len(line)
                self.stream.write("\r" + line + pad)
            self.stream.flush()
        except (OSError, ValueError):
            self.enabled = False

    def close(self) -> None:
        """Erase the TTY line (auto) or emit the final total (plain)."""
        if not self.enabled:
            return
        with self._lock:
            try:
                if self.mode == "plain":
                    if self.done:
                        self.stream.write(
                            f"{self.label}: finished {self.done}/{self.total} "
                            f"units  {self.hits} hit(s)  {self.failures} "
                            "failed\n"
                        )
                        self.stream.flush()
                elif self._width:
                    self.stream.write("\r" + " " * self._width + "\r")
                    self.stream.flush()
            except (OSError, ValueError):
                pass
            self._width = 0
