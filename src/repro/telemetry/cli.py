"""Shared CLI wiring for the telemetry layer.

Both experiment-facing CLIs (``python -m repro.experiments`` and
``python -m repro.benchsuite``) — and ``python -m repro.bench`` — get
the same observability surface from two calls::

    add_telemetry_arguments(ap)          # --quiet/--verbose/--trace/...
    tr = start_run(args, "repro.experiments")
    with use_tracer(tr):
        ...                              # the actual run
    finish_run(args, tr, "repro.experiments", executor, cache_dir)

``finish_run`` closes the run span, writes the merged chrome trace
(``--trace``), and drops the end-of-run :class:`RunManifest` next to
the result cache (or wherever ``--manifest`` points).
"""
from __future__ import annotations

import argparse
import os
import time
from typing import Optional

from . import log
from . import progress as progress_mod
from .export import write_trace
from .manifest import RunManifest, default_manifest_path
from .spans import Tracer

__all__ = [
    "add_telemetry_arguments", "start_run", "finish_run", "progress_mode",
]


def progress_mode(args) -> str:
    """The effective progress mode for parsed CLI args.

    ``--quiet`` wins over ``--progress`` (quiet means *quiet*), and CLIs
    written before the flag existed fall back to ``auto``.
    """
    if getattr(args, "quiet", False):
        return "off"
    return getattr(args, "progress", "auto")


def add_telemetry_arguments(ap: argparse.ArgumentParser) -> None:
    """The observability flags shared by every repro CLI."""
    g = ap.add_mutually_exclusive_group()
    g.add_argument(
        "--quiet", action="store_true",
        help="only warnings and errors on stderr; disables the progress meter",
    )
    g.add_argument(
        "--verbose", action="store_true",
        help="debug-level diagnostics on stderr",
    )
    ap.add_argument(
        "--progress", default="auto", choices=list(progress_mod.MODES),
        help="sweep progress reporting: 'auto' renders a live line on a "
             "TTY and nothing otherwise, 'plain' prints periodic progress "
             "lines even when stderr is redirected (CI logs), 'off' "
             "disables it (--quiet implies off)",
    )
    ap.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write the merged run timeline (engine, cache, pool workers, "
             "simulated kernels) as chrome://tracing JSON",
    )
    ap.add_argument(
        "--events", default=None, metavar="FILE",
        help="stream raw span/instant events to FILE as JSONL while running",
    )
    ap.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="run-manifest path (default: <cache-dir>/manifests/<run-id>.json)",
    )
    ap.add_argument(
        "--no-manifest", action="store_true",
        help="skip writing the end-of-run manifest",
    )


def start_run(args, command: str) -> Tracer:
    """Set log verbosity from the parsed args and open the run tracer."""
    log.set_verbosity(
        quiet=getattr(args, "quiet", False),
        verbose=getattr(args, "verbose", False),
    )
    short = command.rsplit(".", 1)[-1]
    run_id = f"{short}-{os.getpid()}-{int(time.time())}"
    return Tracer(run_id=run_id, jsonl_path=getattr(args, "events", None))


def finish_run(
    args,
    tr: Tracer,
    command: str,
    executor=None,
    cache_dir: Optional[str] = None,
    lifecycle: Optional[dict] = None,
):
    """Close the run span; emit trace + manifest as the flags ask.

    Returns the manifest path, or None when no manifest was written
    (``--no-manifest``, or cache disabled with no explicit path to
    write to).
    """
    tr.finish()
    trace_path = getattr(args, "trace", None)
    if trace_path:
        write_trace(tr.events, trace_path, process_name=command)
        log.info(
            "telemetry.trace",
            f"wrote {len(tr.events)} events to {trace_path}",
        )
    if getattr(args, "no_manifest", False):
        return None
    path = getattr(args, "manifest", None)
    if path is None:
        if cache_dir is None:
            return None
        path = default_manifest_path(cache_dir, tr.trace_id)
    sweep = executor.stats.summary() if executor is not None else {}
    man = RunManifest.collect(
        command, run_id=tr.trace_id, sweep=sweep, lifecycle=lifecycle
    )
    out = man.write(path)
    log.debug("telemetry.manifest", f"run manifest written to {out}")
    return out
