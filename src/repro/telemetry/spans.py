"""Hierarchical span tracing for whole runs.

A :class:`Tracer` records a tree of :class:`Span`\\ s —
``sweep -> unit -> attempt -> launch`` — plus instant events (retries,
backoff sleeps, injected faults, cache quarantines) attached to
whichever span was open when they fired.  Timestamps are wall-clock
epoch seconds (``time.time()``), which is comparable across the pool
worker processes on one machine, so the parent can stitch worker spans
into its own timeline without rebasing.

Usage::

    tr = Tracer(run_id="sweep-1")
    with use_tracer(tr):
        with span("sweep.prewarm", "engine", units=41):
            ...
            event("retry.backoff", seconds=0.05)

    tr.finish()                 # closes the run span
    tr.events                   # list of finished Span/Instant records

When no tracer is installed (the default), :func:`span` and
:func:`event` are no-ops that allocate nothing — the telemetry-off
fast path the overhead test holds to budget.

Cross-process propagation: the engine hands each pool worker the pair
``(trace_id, parent_span_id)``; the worker builds its own
:class:`Tracer` with :func:`worker_tracer`, whose span IDs are
PID-prefixed (collision-free by construction), and ships its finished
events home inside the ok/err payload; the parent folds them in with
:meth:`Tracer.absorb`.
"""
from __future__ import annotations

import contextlib
import dataclasses
import functools
import json
import os
import threading
import time
from typing import Optional

__all__ = [
    "Span",
    "Instant",
    "Tracer",
    "tracer",
    "use_tracer",
    "span",
    "event",
    "traced",
    "current_span_id",
    "worker_tracer",
]


@dataclasses.dataclass
class Span:
    """One timed operation in the run tree."""

    name: str
    cat: str  # "engine" | "cache" | "unit" | "launch" | ...
    span_id: str
    parent_id: Optional[str]
    trace_id: str
    t0: float  # epoch seconds
    t1: Optional[float] = None
    attrs: dict = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def as_dict(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "cat": self.cat,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
        }


@dataclasses.dataclass
class Instant:
    """A point event (retry, fault, quarantine) tied to an open span."""

    name: str
    cat: str
    span_id: Optional[str]  # the span that was open when it fired
    trace_id: str
    ts: float
    attrs: dict = dataclasses.field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": "instant",
            "name": self.name,
            "cat": self.cat,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "ts": self.ts,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects one process's spans; optionally streams them as JSONL."""

    def __init__(
        self,
        run_id: Optional[str] = None,
        jsonl_path: Optional[str] = None,
        root_name: str = "run",
        root_cat: str = "run",
        _id_prefix: Optional[str] = None,
        _root_parent: Optional[str] = None,
    ):
        self.trace_id = run_id or f"run-{os.getpid()}-{int(time.time() * 1e3):x}"
        self._prefix = _id_prefix if _id_prefix is not None else "s"
        self._next = 0
        self._lock = threading.Lock()
        #: finished spans + instants, in completion order
        self.events: list = []
        self._stack = threading.local()
        self._root_parent = _root_parent
        self._jsonl = open(jsonl_path, "a") if jsonl_path else None
        self.root = self.start_span(root_name, root_cat, pid=os.getpid())

    # -- span lifecycle ---------------------------------------------------
    def _new_id(self) -> str:
        with self._lock:
            self._next += 1
            return f"{self._prefix}{self._next}"

    def _tos(self) -> list:
        st = getattr(self._stack, "spans", None)
        if st is None:
            st = self._stack.spans = []
        return st

    def current(self) -> Optional[Span]:
        st = self._tos()
        return st[-1] if st else None

    def start_span(self, name: str, cat: str = "engine", **attrs) -> Span:
        parent = self.current()
        parent_id = (
            parent.span_id if parent is not None
            else getattr(self, "root", None) and self.root.span_id
            or self._root_parent
        )
        s = Span(
            name=name, cat=cat, span_id=self._new_id(), parent_id=parent_id,
            trace_id=self.trace_id, t0=time.time(), attrs=attrs,
        )
        self._tos().append(s)
        return s

    def end_span(self, s: Span, **attrs) -> Span:
        s.t1 = time.time()
        if attrs:
            s.attrs.update(attrs)
        st = self._tos()
        for i, open_span in enumerate(st):
            if open_span is s:
                del st[i:]
                break
        self._emit(s)
        return s

    def instant(self, name: str, cat: str = "engine", **attrs) -> Instant:
        cur = self.current()
        ev = Instant(
            name=name, cat=cat,
            span_id=cur.span_id if cur is not None else self.root.span_id,
            trace_id=self.trace_id, ts=time.time(), attrs=attrs,
        )
        self._emit(ev)
        return ev

    def record_span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        parent_id: Optional[str] = None,
        **attrs,
    ) -> Span:
        """Add an explicitly-timed span (e.g. simulated kernel time).

        The virtual-clock spans of the simulator are re-anchored onto
        the wall timeline by their caller; this just records the result.
        """
        s = Span(
            name=name, cat=cat, span_id=self._new_id(),
            parent_id=parent_id or self.root.span_id,
            trace_id=self.trace_id, t0=t0, t1=t1, attrs=attrs,
        )
        self._emit(s)
        return s

    def _emit(self, ev) -> None:
        with self._lock:
            self.events.append(ev)
            if self._jsonl is not None:
                self._jsonl.write(json.dumps(ev.as_dict()) + "\n")
                self._jsonl.flush()

    # -- cross-process ----------------------------------------------------
    def export_events(self) -> list:
        """Finished events as JSON payloads (the worker->parent wire form)."""
        with self._lock:
            return [e.as_dict() for e in self.events]

    def absorb(self, payloads) -> int:
        """Fold a worker's exported events into this tracer's stream."""
        count = 0
        for d in payloads or ():
            if d.get("kind") == "instant":
                ev = Instant(
                    name=d["name"], cat=d["cat"], span_id=d["span_id"],
                    trace_id=self.trace_id, ts=d["ts"], attrs=d["attrs"],
                )
            else:
                ev = Span(
                    name=d["name"], cat=d["cat"], span_id=d["span_id"],
                    parent_id=d["parent_id"], trace_id=self.trace_id,
                    t0=d["t0"], t1=d["t1"], attrs=d["attrs"],
                )
            self._emit(ev)
            count += 1
        return count

    def abandon(self, reason: str = "interrupted") -> int:
        """Mark every still-open span as aborted; returns how many.

        Called by the graceful-shutdown path so a drained run's trace
        distinguishes "this span ended" from "this span was cut off":
        each open span gains ``aborted=True`` and the abandon reason,
        then closes at the abandon time.  The tracer stays usable — the
        end-of-run reporting spans still record normally.
        """
        open_spans = [s for s in self._tos() if s is not self.root]
        for s in reversed(open_spans):
            self.end_span(s, aborted=True, abort_reason=reason)
        return len(open_spans)

    def finish(self) -> None:
        """Close the run-root span (and any spans left open) and the log."""
        for s in reversed(list(self._tos())):
            self.end_span(s)
        if self.root.t1 is None:
            self.root.t1 = time.time()
            self._emit(self.root)
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None


#: process-wide active tracer; None (the default) disables span tracing
_ACTIVE: Optional[Tracer] = None


def tracer() -> Optional[Tracer]:
    return _ACTIVE


@contextlib.contextmanager
def use_tracer(t: Optional[Tracer]):
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = t
    try:
        yield t
    finally:
        _ACTIVE = prev


@contextlib.contextmanager
def span(name: str, cat: str = "engine", **attrs):
    """Open a span on the active tracer (no-op without one)."""
    t = _ACTIVE
    if t is None:
        yield None
        return
    s = t.start_span(name, cat, **attrs)
    try:
        yield s
    finally:
        t.end_span(s)


def event(name: str, cat: str = "engine", **attrs) -> None:
    """Record an instant event on the active tracer (no-op without one)."""
    t = _ACTIVE
    if t is not None:
        t.instant(name, cat, **attrs)


def current_span_id() -> Optional[str]:
    t = _ACTIVE
    if t is None:
        return None
    cur = t.current()
    return cur.span_id if cur is not None else t.root.span_id


def traced(name: Optional[str] = None, cat: str = "engine"):
    """Decorator form of :func:`span` for whole functions."""

    def deco(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(label, cat):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def worker_tracer(ctx) -> Optional[Tracer]:
    """Build the pool-worker-side tracer from a propagated span context.

    ``ctx`` is the ``(trace_id, parent_span_id)`` pair the engine put in
    the work-unit submission (or None when the parent ran untraced).
    Span IDs are prefixed with the worker PID so the parent can absorb
    events from any number of workers without collisions.
    """
    if ctx is None:
        return None
    trace_id, parent_id = ctx
    return Tracer(
        run_id=trace_id, root_name="worker", root_cat="pool",
        _id_prefix=f"w{os.getpid()}-", _root_parent=parent_id,
    )
