"""Run manifests: enough provenance to diff any two runs.

A :class:`RunManifest` is written at the end of every runner /
benchsuite / bench invocation.  It pins *what ran* (command, args,
package version, git SHA, python/platform), *on what* (every
DeviceSpec, calibration constants included), *under what plan* (fault
seed/spec), and *what happened* (metrics snapshot, sweep summary,
failure report) — the same discipline the paper needs for its own
cross-device claims: a measurement you cannot reproduce is a rumor.

``RunManifest.diff`` answers "why do these two runs disagree?" by
naming exactly the keys that changed.
"""
from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

from .._version import __version__

__all__ = ["RunManifest", "git_sha", "default_manifest_path"]

SCHEMA_VERSION = 1


def git_sha(cwd: Optional[str] = None) -> str:
    """Current commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _device_specs() -> dict:
    from ..arch.specs import ALL_DEVICES

    return {
        name: dataclasses.asdict(spec) for name, spec in sorted(ALL_DEVICES.items())
    }


@dataclasses.dataclass
class RunManifest:
    """Everything needed to attribute a difference between two runs."""

    run_id: str
    command: str  # e.g. "repro.experiments"
    argv: list
    created_unix: float
    git_sha: str
    version: str
    python: str
    platform: str
    #: fault-injection provenance: seed + the raw plan spec (or None)
    fault_seed: Optional[int]
    fault_spec: Optional[str]
    #: every DeviceSpec, calibration constants included
    devices: dict
    #: MetricsRegistry.snapshot() at the end of the run
    metrics: dict
    #: SweepStats.summary() — per-unit serve records + failure report
    sweep: dict
    #: crash-safety record: {"state", "exit_code", "journal", "resumed",
    #: "interrupted", ...} from the lifecycle layer (None on old runs)
    lifecycle: Optional[dict] = None
    schema: int = SCHEMA_VERSION

    # -- construction -----------------------------------------------------
    @classmethod
    def collect(
        cls,
        command: str,
        argv=None,
        run_id: Optional[str] = None,
        faults=None,
        metrics: Optional[dict] = None,
        sweep: Optional[dict] = None,
        lifecycle: Optional[dict] = None,
    ) -> "RunManifest":
        """Snapshot the current process into a manifest."""
        from . import metrics as metrics_mod

        if faults is None:
            fault_seed, fault_spec = None, os.environ.get("REPRO_FAULTS") or None
        else:
            fault_seed = faults.seed
            fault_spec = json.dumps(
                {
                    "seed": faults.seed,
                    "rules": [dataclasses.asdict(r) for r in faults.rules],
                },
                sort_keys=True,
            )
        if fault_spec is not None and fault_seed is None:
            try:
                from ..faults import from_spec

                plan = from_spec(fault_spec)
                fault_seed = plan.seed if plan is not None else None
            except Exception:
                fault_seed = None
        return cls(
            run_id=run_id or f"{command}-{os.getpid()}-{int(time.time())}",
            command=command,
            argv=[str(a) for a in (argv if argv is not None else sys.argv[1:])],
            created_unix=time.time(),
            git_sha=git_sha(),
            version=__version__,
            python=sys.version.split()[0],
            platform=platform.platform(),
            fault_seed=fault_seed,
            fault_spec=fault_spec,
            devices=_device_specs(),
            metrics=metrics if metrics is not None else metrics_mod.registry().snapshot(),
            sweep=sweep or {},
            lifecycle=lifecycle,
        )

    # -- (de)serialization -------------------------------------------------
    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "RunManifest":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def write(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump(self.to_json(), f, indent=1, sort_keys=True)
            f.flush()
            try:
                os.fsync(f.fileno())
            except OSError:
                pass
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path) -> "RunManifest":
        with open(path) as f:
            return cls.from_json(json.load(f))

    # -- comparison --------------------------------------------------------
    def diff(self, other: "RunManifest") -> dict:
        """Top-level keys on which two manifests disagree.

        Returns ``{key: (self_value, other_value)}``; volatile identity
        fields (run id, timestamps, argv) are excluded so an empty diff
        means "same code, same devices, same plan, same outcome".
        """
        volatile = {
            "run_id", "created_unix", "argv", "metrics", "sweep", "lifecycle",
        }
        out = {}
        a, b = self.to_json(), other.to_json()
        for k in sorted(set(a) | set(b)):
            if k in volatile:
                continue
            if a.get(k) != b.get(k):
                out[k] = (a.get(k), b.get(k))
        return out


def default_manifest_path(cache_dir, run_id: str) -> Path:
    """Where a CLI run's manifest lands by default: ``<cache>/manifests/``."""
    return Path(cache_dir) / "manifests" / f"{run_id}.json"
