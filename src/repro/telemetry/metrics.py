"""Process-wide metrics registry: counters, gauges, histograms.

Every layer of the stack (engine, cache, fault injector, runtimes,
simulator) reports into one :class:`MetricsRegistry` so a run's
behaviour — cache hit ratio, retry counts, per-FailureKind totals,
launch-overhead distributions — is observable without grepping logs.

Two properties matter more than feature count:

* **Deterministic merge.**  Histograms use *fixed* bucket boundaries
  chosen at creation, so merging the registries of N pool workers adds
  bucket counts element-wise — the result is independent of merge
  order and of how units were scheduled.  Counters add; gauges merge
  by max (the only order-free choice that still answers "how high did
  it get?").  ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` by
  construction, which the hypothesis suite asserts.
* **Cheap when idle.**  A counter bump is a dict lookup and a float
  add; nothing allocates on the hot path after the first observation.

Worker processes carry their own registry (module-global state does
not cross ``fork``/``spawn`` usefully under the engine's ok/err payload
protocol); the engine ships each worker's :meth:`~MetricsRegistry
.snapshot` home in the payload and folds it into the parent with
:meth:`~MetricsRegistry.merge_snapshot`.
"""
from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS_S",
    "OVERHEAD_BUCKETS_S",
    "FSYNC_BUCKETS_S",
    "registry",
    "use_registry",
    "counter",
    "gauge",
    "histogram",
    "SNAPSHOT_SCHEMA",
    "metrics_dir",
    "snapshot_path",
    "write_snapshot_file",
    "load_snapshot_file",
]

#: default boundaries for wall/virtual time observations (seconds),
#: 1us .. 100s in decade-and-third steps; fixed so merges are stable
TIME_BUCKETS_S = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
)

#: launch overheads live in the 10-200us band the paper measures
#: (Section V.D); a finer grid there keeps the distribution readable
OVERHEAD_BUCKETS_S = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 1e-2,
)

#: journal fsync latencies: sub-ms on local disk, tens of ms on
#: networked CI filesystems — the grid spans both so the WAL's real
#: durability cost stays visible in the run manifest
FSYNC_BUCKETS_S = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)


class Counter:
    """A monotonically increasing total (float; byte counts welcome)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level (pool occupancy, pending units).

    Tracks the current level plus the high-water mark; only the
    high-water mark survives a merge (current levels of two finished
    processes are not meaningfully combinable).
    """

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)
        if v > self.max:
            self.max = float(v)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max}


class Histogram:
    """Fixed-boundary histogram; parallel/sequential runs merge identically.

    ``boundaries`` are upper bounds of each bucket; one overflow bucket
    catches everything beyond the last boundary.  The boundaries are
    part of the metric's identity: observing into (or merging) a
    histogram with different boundaries is an error, never a silent
    re-bucketing.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, boundaries: Sequence[float] = TIME_BUCKETS_S):
        if list(boundaries) != sorted(boundaries):
            raise ValueError(f"histogram {name!r}: boundaries must be sorted")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        v = float(v)
        lo, hi = 0, len(self.boundaries)
        while lo < hi:  # first boundary >= v (bisect, no import)
            mid = (lo + hi) // 2
            if self.boundaries[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Name -> instrument table with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict = {}

    # -- accessors --------------------------------------------------------
    def _get(self, name: str, factory):
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.get(name)
                if m is None:
                    m = self._metrics[name] = factory(name)
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, boundaries: Sequence[float] = TIME_BUCKETS_S
    ) -> Histogram:
        h = self._get(name, lambda n: Histogram(n, boundaries))
        if h.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} re-declared with different boundaries"
            )
        return h

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list:
        return sorted(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument (sorted by name)."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's snapshot into this one, deterministically.

        Counters add, gauges keep the max high-water mark, histograms
        add bucket counts (boundaries must agree).  Metrics present only
        in ``snap`` are created.
        """
        for name in sorted(snap):
            d = snap[name]
            kind = d.get("type")
            if kind == "counter":
                self.counter(name).inc(d["value"])
            elif kind == "gauge":
                g = self.gauge(name)
                g.max = max(g.max, d.get("max", d["value"]))
                g.value = max(g.value, d["value"])
            elif kind == "histogram":
                h = self.histogram(name, d["boundaries"])
                if list(h.boundaries) != list(d["boundaries"]):
                    raise ValueError(
                        f"histogram {name!r}: boundary mismatch on merge"
                    )
                h.counts = [a + b for a, b in zip(h.counts, d["counts"])]
                h.count += d["count"]
                h.sum += d["sum"]
                if d["count"]:
                    h.min = min(h.min, d["min"])
                    h.max = max(h.max, d["max"])
            else:  # unknown instrument type: skip rather than crash a run
                continue

    def merge(self, others: Iterable["MetricsRegistry"]) -> None:
        for o in others:
            self.merge_snapshot(o.snapshot())


#: the process-wide registry every instrumented layer reports into
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


@contextlib.contextmanager
def use_registry(reg: Optional[MetricsRegistry] = None):
    """Swap in a fresh (or given) registry for the dynamic extent.

    Tests and the bench CLI use this to scope measurements to one run
    without inheriting counts from earlier work in the process.
    """
    global _REGISTRY
    prev = _REGISTRY
    _REGISTRY = reg if reg is not None else MetricsRegistry()
    try:
        yield _REGISTRY
    finally:
        _REGISTRY = prev


# -- per-run snapshot files ------------------------------------------------
#: layout version of the on-disk snapshot document
SNAPSHOT_SCHEMA = 1


def metrics_dir(cache_dir) -> Path:
    """Where a sweep workdir keeps its per-run metrics snapshots."""
    return Path(cache_dir) / "metrics"


def snapshot_path(cache_dir, run_id: str) -> Path:
    """The snapshot file for one run under a sweep workdir."""
    return metrics_dir(cache_dir) / f"{run_id}.json"


def write_snapshot_file(
    cache_dir, run_id: str, snapshot: Optional[dict] = None
) -> Path:
    """Atomically persist a registry snapshot for out-of-process readers.

    The engine's heartbeat thread calls this every beat, so a scraper
    (``repro.obs metrics``) always reads a complete, at-most-one-beat-old
    document — never a torn write (tmp + ``os.replace``).
    """
    path = snapshot_path(cache_dir, run_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": SNAPSHOT_SCHEMA,
        "run_id": run_id,
        "unix": time.time(),
        "metrics": snapshot if snapshot is not None else _REGISTRY.snapshot(),
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_snapshot_file(path) -> dict:
    """Read one snapshot document back; raises on schema mismatch."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"{path}: snapshot schema {doc.get('schema')!r} != {SNAPSHOT_SCHEMA}"
        )
    return doc


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, boundaries: Sequence[float] = TIME_BUCKETS_S) -> Histogram:
    return _REGISTRY.histogram(name, boundaries)
