"""repro.faults — deterministic, seeded fault injection.

The chaos-testing companion of :mod:`repro.exec`: plants exceptions,
transient faults, hangs, worker kills, and cache corruption into chosen
work units (by label pattern, with seeded deterministic probability) so
the test suite and CI can *prove* the engine's fault tolerance instead
of asserting it.  See :mod:`repro.faults.injector` for the rule
language and the ``REPRO_FAULTS`` environment format.
"""
from .injector import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    corrupt_file,
    from_env,
    from_spec,
    in_pool_worker,
    mark_pool_worker,
)

__all__ = [
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "corrupt_file",
    "from_env",
    "from_spec",
    "in_pool_worker",
    "mark_pool_worker",
]
