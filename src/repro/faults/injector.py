"""Deterministic, seeded fault injection for the sweep engine.

A :class:`FaultInjector` holds a list of :class:`FaultRule`\\ s, each of
which targets work units by an ``fnmatch`` pattern over the unit label
(``"MD/opencl@GTX480[small]"``) and fires with a configured
probability.  The roll is a pure function of ``(seed, rule, label)`` —
a SHA-256 hash, no RNG state — so the same plan injects the same faults
into the same units regardless of execution order, process fan-out, or
retry interleaving.  That determinism is what lets the chaos tests
assert *exactly* which units fail.

Fault kinds:

``raise``
    raise an :class:`InjectedFault` (terminal; the engine records a
    ``FailedUnit`` and quarantines the unit)
``transient``
    raise a :class:`~repro.errors.TransientError` on the first
    ``attempts`` attempts, then let the unit succeed — exercises the
    engine's bounded-retry/backoff path
``hang``
    sleep ``seconds`` before executing — exercises the ``--timeout``
    cutoff
``kill``
    die without reporting (``os._exit``) when running inside a pool
    worker; in the main process, raise a
    :class:`~repro.errors.WorkerCrash` instead so a sequential run is
    never taken down
``corrupt``
    not fired at execution time: the engine asks :meth:`corrupts` after
    storing a result and truncates the cache entry — exercises the
    cache's quarantine-on-load path
``interrupt``
    deliver SIGINT to the sweep driver process (the pool parent when
    firing inside a worker) on the first ``attempts`` attempts, then
    carry on executing the unit — exercises the graceful-shutdown
    drain, the ``interrupted`` journal state, and ``--resume`` replay,
    deterministically, from CI
``postkill``
    the daemon-level chaos rule: die without reporting *after* the
    unit's result is durably stored (``os._exit`` in a worker process)
    on the first ``attempts`` attempts.  Fired by the sweep daemon's
    workers via :meth:`FaultInjector.fire_post` between the cache put
    and the completion report, it kills a worker *mid-lease* with the
    work already durable — exercising lease reclamation, fencing of
    the dead worker's grant, and the idempotent cache-hit re-dispatch
    path (zero duplicated work)

Plans come from config or the ``REPRO_FAULTS`` environment variable
(inherited by pool workers), in either JSON form::

    {"seed": 7, "rules": [{"kind": "raise", "pattern": "MD/opencl*"}]}

or the compact form ``seed=7;raise:MD/opencl*;hang:*BFS*:0.5``, where
each rule is ``kind:pattern[:prob[:attempts[:seconds]]]``.
"""
from __future__ import annotations

import dataclasses
import fnmatch
import hashlib
import json
import os
import signal
import time
from typing import Optional, Sequence

from ..errors import TransientError, WorkerCrash
from ..telemetry import metrics
from ..telemetry import spans as tspans

__all__ = [
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "from_env",
    "from_spec",
    "corrupt_file",
    "mark_pool_worker",
    "in_pool_worker",
]

KINDS = ("raise", "transient", "hang", "kill", "corrupt", "interrupt", "postkill")

#: set in each pool worker by the executor's initializer, so ``kill``
#: faults only ever take down a disposable process
_POOL_WORKER = False


def mark_pool_worker() -> None:
    global _POOL_WORKER
    _POOL_WORKER = True


def in_pool_worker() -> bool:
    return _POOL_WORKER


class InjectedFault(RuntimeError):
    """A planted terminal fault (``raise`` rules)."""

    injected = True


@dataclasses.dataclass(frozen=True)
class FaultRule:
    kind: str  # one of KINDS
    pattern: str  # fnmatch over WorkUnit.label()
    prob: float = 1.0
    attempts: int = 1  # transient: fail this many leading attempts
    seconds: float = 30.0  # hang: how long to stall

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")


@dataclasses.dataclass(frozen=True)
class FaultInjector:
    """A seeded, deterministic fault plan (picklable: crosses into workers)."""

    seed: int = 0
    rules: tuple = ()

    # -- deterministic matching -------------------------------------------
    def _rolls(self, rule: FaultRule, label: str) -> bool:
        # exact equality first: unit labels contain "[size]", which
        # fnmatch would otherwise read as a character class
        if label != rule.pattern and not fnmatch.fnmatchcase(label, rule.pattern):
            return False
        if rule.prob >= 1.0:
            return True
        blob = f"{self.seed}:{rule.kind}:{rule.pattern}:{label}".encode()
        roll = int(hashlib.sha256(blob).hexdigest()[:8], 16) / float(1 << 32)
        return roll < rule.prob

    def planned(self, label: str, kind: Optional[str] = None):
        """The first rule that fires for ``label`` (optionally of ``kind``)."""
        for rule in self.rules:
            if kind is not None and rule.kind != kind:
                continue
            if self._rolls(rule, label):
                return rule
        return None

    def corrupts(self, label: str) -> bool:
        """Should the cache entry this unit just stored be corrupted?"""
        return self.planned(label, "corrupt") is not None

    # -- execution-time injection -----------------------------------------
    def fire(self, label: str, attempt: int = 1) -> None:
        """Inject any execution-time fault planned for this unit/attempt.

        Called at the execution boundary (before the simulation runs),
        both in pool workers and on the sequential path.
        """
        for rule in self.rules:
            if rule.kind in ("corrupt", "postkill") or not self._rolls(rule, label):
                continue
            self._note(rule, label, attempt)
            if rule.kind == "raise":
                raise InjectedFault(f"injected fault for {label}")
            if rule.kind == "transient":
                if attempt <= rule.attempts:
                    e = TransientError(
                        f"injected transient fault for {label} "
                        f"(attempt {attempt}/{rule.attempts})"
                    )
                    e.injected = True
                    raise e
            elif rule.kind == "hang":
                time.sleep(rule.seconds)
            elif rule.kind == "kill":
                if in_pool_worker():
                    os._exit(13)  # die without cleanup: a real worker crash
                e = WorkerCrash(f"injected worker kill for {label}")
                e.injected = True
                raise e
            elif rule.kind == "interrupt":
                if attempt <= rule.attempts:
                    # signal the *driver*: workers ignore SIGINT so the
                    # drain protocol (stop admission, bounded grace)
                    # plays out exactly as a terminal Ctrl-C would
                    target = os.getppid() if in_pool_worker() else os.getpid()
                    try:
                        os.kill(target, signal.SIGINT)
                    except OSError:
                        pass

    def fire_post(self, label: str, attempt: int = 1) -> None:
        """Inject any post-execution fault planned for this unit/attempt.

        Called by the sweep daemon's workers *after* the result is
        durably in the cache but *before* the completion report: a
        ``postkill`` rule dies right here (``os._exit`` in a worker,
        :class:`~repro.errors.WorkerCrash` in-process so tests survive),
        leaving a reclaimable lease over an already-durable result.
        """
        for rule in self.rules:
            if rule.kind != "postkill" or not self._rolls(rule, label):
                continue
            if attempt > rule.attempts:
                continue
            self._note(rule, label, attempt)
            if in_pool_worker():
                os._exit(17)  # die mid-lease: the work is durable, the report is lost
            e = WorkerCrash(f"injected post-completion kill for {label}")
            e.injected = True
            raise e

    def _note(self, rule: FaultRule, label: str, attempt: int) -> None:
        """Record the firing on whatever telemetry is active here.

        A ``transient`` rule only counts while it still fails the
        attempt; a ``kill`` in a pool worker is about to ``os._exit``,
        but the instant event still reaches the parent when the worker
        dies *after* exporting (and the planned-fault accounting in the
        engine covers the rest).
        """
        if rule.kind in ("transient", "interrupt", "postkill") and attempt > rule.attempts:
            return
        metrics.counter(f"faults.injected.{rule.kind}").inc()
        tspans.event(
            "fault.injected", "fault",
            kind=rule.kind, label=label, pattern=rule.pattern,
            attempt=attempt,
        )


def from_spec(spec) -> Optional[FaultInjector]:
    """Build an injector from a JSON/compact string, dict, or None."""
    if spec is None or isinstance(spec, FaultInjector):
        return spec
    if isinstance(spec, str):
        spec = spec.strip()
        if not spec:
            return None
        if spec.startswith("{"):
            spec = json.loads(spec)
        else:
            return _from_compact(spec)
    rules = tuple(FaultRule(**r) for r in spec.get("rules", ()))
    return FaultInjector(seed=int(spec.get("seed", 0)), rules=rules)


def _from_compact(text: str) -> FaultInjector:
    seed = 0
    rules = []
    for field in filter(None, (p.strip() for p in text.split(";"))):
        if field.startswith("seed="):
            seed = int(field[5:])
            continue
        parts = field.split(":")
        if len(parts) < 2:
            raise ValueError(
                f"bad fault rule {field!r}; want kind:pattern[:prob[:attempts[:seconds]]]"
            )
        kw: dict = {"kind": parts[0], "pattern": parts[1]}
        if len(parts) > 2 and parts[2]:
            kw["prob"] = float(parts[2])
        if len(parts) > 3 and parts[3]:
            kw["attempts"] = int(parts[3])
        if len(parts) > 4 and parts[4]:
            kw["seconds"] = float(parts[4])
        rules.append(FaultRule(**kw))
    return FaultInjector(seed=seed, rules=tuple(rules))


def from_env() -> Optional[FaultInjector]:
    """The ambient fault plan: ``$REPRO_FAULTS``, or None when unset."""
    return from_spec(os.environ.get("REPRO_FAULTS"))


def corrupt_file(path) -> None:
    """Truncate a cache entry mid-payload (simulates a torn write)."""
    try:
        with open(path, "r+b") as f:
            f.seek(0, os.SEEK_END)
            size = f.tell()
            f.truncate(max(1, size // 2))
    except OSError:
        pass
