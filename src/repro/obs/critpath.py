"""Critical-path analysis over a merged chrome trace.

``repro.obs critpath`` answers "where did the wall clock go?" for a run
whose merged trace (:mod:`repro.telemetry.export`, ``--trace FILE``)
was saved: per-category *busy* wall time computed as the union of that
category's ``ph: "X"`` slices (so ten overlapping worker slices of 1s
count 1s of wall, not 10s of CPU), the share of the run's total span
each category keeps busy, and the top-k longest individual slices —
the spans actually worth optimising.

``diff`` runs the same attribution over two traces and reports the
per-category wall delta, which turns "the sweep got slower" into "the
cache I/O band grew 40%".
"""
from __future__ import annotations

import json
from typing import Optional

__all__ = ["load_trace", "analyze", "diff", "render", "render_diff"]

_US = 1e6


def load_trace(path) -> list:
    """The ``traceEvents`` list of one merged trace file."""
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc) if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a chrome trace (no traceEvents list)")
    return events


def _union_s(intervals) -> float:
    """Total seconds covered by a set of (t0, t1) intervals."""
    total = 0.0
    end = float("-inf")
    for t0, t1 in sorted(intervals):
        if t0 > end:
            total += t1 - t0
            end = t1
        elif t1 > end:
            total += t1 - end
            end = t1
    return total


def analyze(events, top: int = 10) -> dict:
    """Per-category wall attribution for one trace.

    Returns ``{"wall_s", "categories": [...], "top_spans": [...],
    "slices", "instants"}``; categories sort by busy seconds
    descending (name-tiebroken, so output is deterministic).
    """
    by_cat: dict = {}
    spans: list = []
    instants = 0
    t_min, t_max = float("inf"), float("-inf")
    for e in events:
        ph = e.get("ph")
        if ph == "i":
            instants += 1
            continue
        if ph != "X":
            continue
        t0 = float(e.get("ts", 0.0)) / _US
        t1 = t0 + float(e.get("dur", 0.0)) / _US
        cat = e.get("cat", "other")
        by_cat.setdefault(cat, []).append((t0, t1))
        spans.append((t1 - t0, e.get("name", "?"), cat, t0))
        t_min = min(t_min, t0)
        t_max = max(t_max, t1)
    wall = max(0.0, t_max - t_min) if spans else 0.0
    cats = []
    for cat in by_cat:
        busy = _union_s(by_cat[cat])
        cats.append({
            "cat": cat,
            "busy_s": busy,
            "share": (busy / wall) if wall else 0.0,
            "slices": len(by_cat[cat]),
        })
    cats.sort(key=lambda c: (-c["busy_s"], c["cat"]))
    spans.sort(key=lambda s: (-s[0], s[1], s[3]))
    return {
        "wall_s": wall,
        "categories": cats,
        "top_spans": [
            {"dur_s": d, "name": n, "cat": c, "t0_s": t0}
            for d, n, c, t0 in spans[:top]
        ],
        "slices": len(spans),
        "instants": instants,
    }


def diff(base: dict, current: dict) -> list:
    """Per-category busy-seconds delta between two :func:`analyze` results."""
    b = {c["cat"]: c for c in base["categories"]}
    c = {cc["cat"]: cc for cc in current["categories"]}
    rows = []
    for cat in sorted(set(b) | set(c)):
        bs = b.get(cat, {}).get("busy_s", 0.0)
        cs = c.get(cat, {}).get("busy_s", 0.0)
        rows.append({
            "cat": cat,
            "base_s": bs,
            "current_s": cs,
            "delta_s": cs - bs,
            "ratio": (cs / bs) if bs > 0 else None,
        })
    rows.sort(key=lambda r: (-abs(r["delta_s"]), r["cat"]))
    return rows


def _s(v: float) -> str:
    return f"{v:.3f}s"


def render(result: dict, label: str = "trace") -> str:
    """ASCII report in the house table style."""
    lines = [
        f"== critpath[{label}]: {_s(result['wall_s'])} wall, "
        f"{result['slices']} slice(s), {result['instants']} instant(s) ==",
        f"{'category':<22} {'busy':>10} {'share':>7} {'slices':>7}",
        "-" * 49,
    ]
    for c in result["categories"]:
        lines.append(
            f"{c['cat']:<22} {_s(c['busy_s']):>10} "
            f"{c['share']:>6.1%} {c['slices']:>7}"
        )
    if result["top_spans"]:
        lines.append("")
        lines.append(f"top {len(result['top_spans'])} span(s) by duration:")
        for s in result["top_spans"]:
            lines.append(
                f"  {_s(s['dur_s']):>10}  {s['cat']:<10} {s['name']}"
            )
    return "\n".join(lines)


def render_diff(rows, base_label: str, cur_label: str) -> str:
    head = f"{'category':<22} {'base':>10} {'current':>10} {'delta':>10} {'ratio':>7}"
    lines = [
        f"== critpath diff: {base_label} -> {cur_label} ==",
        head,
        "-" * len(head),
    ]
    for r in rows:
        ratio = "-" if r["ratio"] is None else f"{r['ratio']:.2f}x"
        lines.append(
            f"{r['cat']:<22} {_s(r['base_s']):>10} {_s(r['current_s']):>10} "
            f"{r['delta_s']:>+9.3f}s {ratio:>7}"
        )
    return "\n".join(lines)
