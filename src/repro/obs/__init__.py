"""repro.obs — out-of-process observability for sweep runs.

The engine durably writes three artifact streams as it runs: the
per-run journal WAL (with periodic heartbeat records), the per-run
metrics snapshot the heartbeat thread flushes, and — on request — the
merged chrome trace.  ``repro.obs`` is the read side: a CLI
(``python -m repro.obs``) that turns those artifacts into live status,
fleet overviews, Prometheus-scrapable metrics, and regression
attribution *without any cooperation from the sweep process*, so it
works equally against a running, hung, crashed, or finished run.

Subcommands (see :mod:`repro.obs.__main__`):

* ``ls`` — every run under a cache dir, newest first;
* ``status`` — full derived :class:`~repro.obs.registry.RunStatus`
  for one run (``--json`` for machines);
* ``watch`` — live journal tailing with a re-rendered status block;
  ``--once`` emits one byte-deterministic snapshot instead;
* ``metrics`` — the run's metrics snapshot as an OpenMetrics
  textfile (``--check`` lints it);
* ``critpath`` — per-phase wall attribution of a merged trace;
* ``regress`` — drift attribution between two bench snapshots.
"""
from __future__ import annotations

from .registry import (
    STALE_BEATS,
    JournalFollower,
    RunStatus,
    RunTracker,
    find_run,
    runs,
)

__all__ = [
    "STALE_BEATS",
    "JournalFollower",
    "RunStatus",
    "RunTracker",
    "find_run",
    "runs",
]
