"""Run registry: discover journals, derive live status out-of-process.

Everything here reads artifacts the engine already durably writes — the
per-run journal WAL (:mod:`repro.exec.journal`) and the heartbeat
records inside it — without any cooperation from the sweep process.
That is the design constraint that makes ``repro.obs`` usable against a
run that is hung, crashed, or merely busy: observation is a pure read.

Two layers:

* :class:`JournalFollower` — an incremental, torn-tail-tolerant JSONL
  reader.  Only newline-terminated lines are consumed; the torn tail a
  live writer is mid-append on (or a killed writer left behind) stays
  in the file unconsumed, so a later poll picks it up once complete.
  A *complete* line that still fails to parse is counted and skipped.
* :class:`RunTracker` — folds journal records into a
  :class:`RunStatus`: unit accounting (planned / cached / done /
  failed / in-flight / queued), per-kind failure counts, progress %,
  throughput and ETA from completed-unit durations, degraded/resumed
  flags, and heartbeat-derived liveness.

Liveness semantics: a ``running`` journal whose last heartbeat is older
than :data:`STALE_BEATS` intervals is presumed dead — its in-flight
units are reported as *stale* (orphans a ``--resume`` would re-run),
which is exactly the live-vs-crashed distinction the heartbeat records
exist to answer.
"""
from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Optional

from ..exec.journal import DEFAULT_HEARTBEAT_S, journal_dir

__all__ = [
    "STALE_BEATS",
    "JournalFollower",
    "RunTracker",
    "RunStatus",
    "runs",
    "find_run",
]

#: heartbeats a running journal may miss before it counts as dead
STALE_BEATS = 3


class JournalFollower:
    """Incremental reader of one journal; safe against a live writer."""

    def __init__(self, path):
        self.path = Path(path)
        self.offset = 0
        #: complete-but-unparseable lines skipped so far
        self.torn_lines = 0

    def poll(self) -> list:
        """Parse and return the records appended since the last poll.

        Consumes only up to the last newline: the partial line of an
        in-progress append is left for the next poll, so a concurrent
        reader never misparses (or double-reads) a torn tail.
        """
        try:
            with open(self.path, "rb") as f:
                f.seek(self.offset)
                chunk = f.read()
        except OSError:
            return []
        end = chunk.rfind(b"\n")
        if end < 0:
            return []
        body = chunk[: end + 1]
        self.offset += len(body)
        records = []
        for line in body.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                self.torn_lines += 1
        return records


@dataclasses.dataclass
class RunStatus:
    """Everything ``repro.obs`` knows about one run, derived on demand."""

    run_id: str
    command: str
    #: "planned" (header only) / "running" / "complete" / "interrupted"
    #: / "failed" — the journal's own state machine
    state: str
    #: True = heartbeat fresh, False = presumed dead, None = not
    #: applicable (terminal state) or unknowable (no heartbeats yet)
    live: Optional[bool]
    pid: Optional[int]
    planned: int
    cached: int
    done: int
    failed: int
    in_flight: int
    queued: int
    #: percent of planned units accounted for (cached+done+failed)
    progress_pct: Optional[float]
    #: completed units per second, over the run's journaled lifetime
    throughput_ups: Optional[float]
    #: remaining-work estimate from mean completed-unit duration
    eta_s: Optional[float]
    #: FailureKind.value -> count, terminally failed units only
    fail_kinds: dict
    injected_failures: int
    #: labels of in-flight units owned by a presumed-dead run
    stale_units: list
    demoted: bool
    resumed_from: Optional[str]
    heartbeat_age_s: Optional[float]
    heartbeat_interval_s: Optional[float]
    started_unix: Optional[float]
    updated_unix: Optional[float]
    records: int
    torn_lines: int

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class RunTracker:
    """Incremental journal replay specialised for *status*, not resume."""

    def __init__(self, path):
        self.follower = JournalFollower(path)
        self.path = Path(path)
        self.run_id = self.path.stem if self.path.suffix else str(path)
        self.command = ""
        self.pid: Optional[int] = None
        self.state = "planned"
        self.resumed_from: Optional[str] = None
        self.planned = 0
        self.todo = 0
        self.demoted = False
        self.records = 0
        self.first_unix: Optional[float] = None
        self.last_unix: Optional[float] = None
        self.last_heartbeat: Optional[dict] = None
        self._starts: dict = {}  # digest -> (label, unix)
        self._completed: set = set()
        self._failed: dict = {}  # digest -> (kind, injected)
        self._durations: list = []
        self._done_unix: list = []

    # -- folding -----------------------------------------------------------
    def poll(self) -> "RunTracker":
        """Fold any new journal records in; cheap when nothing changed."""
        for rec in self.follower.poll():
            self._apply(rec)
        return self

    def _apply(self, rec: dict) -> None:
        self.records += 1
        t = rec.get("t")
        u = rec.get("unix")
        if isinstance(u, (int, float)):
            self.first_unix = u if self.first_unix is None else self.first_unix
            self.last_unix = u if self.last_unix is None else max(self.last_unix, u)
        if t == "run":
            self.run_id = rec.get("run_id", self.run_id)
            self.command = rec.get("command", "")
            self.resumed_from = rec.get("resumed_from")
            self.pid = rec.get("pid")
            self.state = "running"
        elif t == "plan":
            # a resumed run re-plans; the latest plan is the live one
            self.planned = int(rec.get("units", 0))
            self.todo = int(rec.get("todo", 0))
        elif t == "start":
            self._starts[rec["d"]] = (rec.get("label", ""), u)
        elif t == "done":
            d = rec["d"]
            started = self._starts.get(d)
            if started is not None and started[1] is not None and u is not None:
                self._durations.append(max(0.0, u - started[1]))
            if u is not None:
                self._done_unix.append(u)
            self._completed.add(d)
            self._failed.pop(d, None)
        elif t == "fail":
            self._failed[rec["d"]] = (
                rec.get("kind", "ERROR"), bool(rec.get("injected"))
            )
        elif t == "hb":
            self.last_heartbeat = rec
        elif t == "demote":
            self.demoted = True
        elif t == "state":
            self.state = rec.get("state", self.state)

    # -- derivation --------------------------------------------------------
    def _in_flight(self) -> dict:
        return {
            d: lab_ts for d, lab_ts in self._starts.items()
            if d not in self._completed and d not in self._failed
        }

    def _liveness(self, now: float):
        """(live, heartbeat_age).  None = terminal state or unknowable."""
        if self.state not in ("running", "planned"):
            return None, None
        hb = self.last_heartbeat
        if hb is not None and isinstance(hb.get("unix"), (int, float)):
            age = max(0.0, now - hb["unix"])
            interval = float(hb.get("interval") or DEFAULT_HEARTBEAT_S)
            return age <= STALE_BEATS * interval, age
        # no heartbeat yet: fall back to the age of the last record —
        # old journals (schema 1) and runs killed before the first beat
        if self.last_unix is None:
            return None, None
        return (now - self.last_unix) <= STALE_BEATS * DEFAULT_HEARTBEAT_S, None

    def status(self, now: Optional[float] = None) -> RunStatus:
        """Derive the :class:`RunStatus` as of ``now``.

        Passing ``now`` pins every age/ETA computation, which is what
        makes ``repro.obs status --once`` byte-deterministic: with
        ``now = last_unix`` the output depends only on journal bytes.
        """
        now = time.time() if now is None else float(now)
        in_flight = self._in_flight()
        done, failed = len(self._completed), len(self._failed)
        cached = max(0, self.planned - self.todo)
        queued = max(0, self.todo - done - failed - len(in_flight))
        progress = None
        if self.planned:
            progress = 100.0 * (cached + done + failed) / self.planned
        throughput = None
        if self._done_unix and self.first_unix is not None:
            span = max(self._done_unix) - self.first_unix
            if span > 0:
                throughput = len(self._done_unix) / span
        eta = None
        remaining = queued + len(in_flight)
        if self.state in ("running", "planned") and remaining and self._durations:
            eta = (sum(self._durations) / len(self._durations)) * remaining
        live, hb_age = self._liveness(now)
        stale = []
        if live is False:
            stale = sorted(lab for lab, _ in in_flight.values())
        kinds: dict = {}
        injected = 0
        for kind, inj in self._failed.values():
            kinds[kind] = kinds.get(kind, 0) + 1
            injected += inj
        hb = self.last_heartbeat or {}
        return RunStatus(
            run_id=self.run_id,
            command=self.command,
            state=self.state,
            live=live,
            pid=self.pid,
            planned=self.planned,
            cached=cached,
            done=done,
            failed=failed,
            in_flight=len(in_flight),
            queued=queued,
            progress_pct=progress,
            throughput_ups=throughput,
            eta_s=eta,
            fail_kinds=dict(sorted(kinds.items())),
            injected_failures=injected,
            stale_units=stale,
            demoted=self.demoted,
            resumed_from=self.resumed_from,
            heartbeat_age_s=hb_age,
            heartbeat_interval_s=hb.get("interval"),
            started_unix=self.first_unix,
            updated_unix=self.last_unix,
            records=self.records,
            torn_lines=self.follower.torn_lines,
        )


# -- discovery -------------------------------------------------------------
def runs(cache_dir) -> list:
    """Every run under a sweep workdir, newest journal activity first."""
    d = journal_dir(cache_dir)
    if not d.is_dir():
        return []
    trackers = [RunTracker(p).poll() for p in sorted(d.glob("*.jsonl"))]
    trackers.sort(
        key=lambda t: (t.last_unix or 0.0, t.run_id), reverse=True
    )
    return trackers


def find_run(cache_dir, token: Optional[str]) -> RunTracker:
    """Resolve a run id (or None/"latest" for the newest) to a tracker.

    Raises ``SystemExit`` with a diagnostic when nothing matches — the
    CLI surfaces this directly, like ``--resume`` does.
    """
    if token in (None, "", "latest"):
        found = runs(cache_dir)
        if not found:
            raise SystemExit(
                f"no run journals under {journal_dir(cache_dir)}"
            )
        return found[0]
    path = journal_dir(cache_dir) / f"{token}.jsonl"
    if not path.exists():
        known = ", ".join(t.run_id for t in runs(cache_dir)[:5]) or "none"
        raise SystemExit(
            f"no journal for run {token!r} under {journal_dir(cache_dir)} "
            f"(latest: {known})"
        )
    return RunTracker(path).poll()
