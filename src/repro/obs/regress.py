"""Bench-trajectory regression attribution.

``repro.obs regress`` compares two ``repro.bench`` snapshots — either
``BENCH_*.json`` payloads or entries of the append-only
``benchmarks/BENCH_history.jsonl`` trajectory — and attributes drift
per metric.  Unlike the bench gate (:func:`repro.bench.compare`),
which enforces each metric's committed tolerance, this tool asks the
trajectory question: *between these two points, what moved more than
X%?* — with a single relative ``threshold`` (default 20%).

Direction matters here: for the cost-like metrics every bench snapshot
records (seconds, bytes, counts), growth beyond the threshold is
``regressed``, shrinkage beyond it is ``improved``, and everything in
band is ``ok``.  ``missing`` marks metrics present in only one
snapshot.  Exit status is 1 iff anything regressed.
"""
from __future__ import annotations

from typing import Optional

__all__ = ["DEFAULT_THRESHOLD", "metric_values", "compare", "render"]

#: relative drift (fraction of the base value) tolerated by default
DEFAULT_THRESHOLD = 0.2


def metric_values(payload: dict) -> dict:
    """``{metric: float}`` from either bench-payload metric shape.

    ``BENCH_*.json`` stores ``{"metrics": {name: {"value": v, ...}}}``;
    history records store the slimmer ``{"metrics": {name: v}}``.  Both
    normalise to plain floats here.
    """
    out = {}
    for name, m in (payload.get("metrics") or {}).items():
        out[name] = float(m["value"]) if isinstance(m, dict) else float(m)
    return out


def compare(
    base: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> list:
    """One row per metric across both snapshots, sorted by metric name."""
    b = metric_values(base)
    c = metric_values(current)
    rows = []
    for name in sorted(set(b) | set(c)):
        if name not in b or name not in c:
            rows.append({
                "metric": name,
                "base": b.get(name),
                "current": c.get(name),
                "delta_pct": None,
                "status": "missing",
            })
            continue
        bv, cv = b[name], c[name]
        delta = cv - bv
        # relative band with an absolute floor so a zero base still
        # tolerates float dust instead of flagging any epsilon
        allowed = threshold * abs(bv) + 1e-9
        if abs(delta) <= allowed:
            status = "ok"
        elif delta > 0:
            status = "regressed"
        else:
            status = "improved"
        rows.append({
            "metric": name,
            "base": bv,
            "current": cv,
            "delta_pct": (100.0 * delta / bv) if bv else None,
            "status": status,
        })
    return rows


def regressed(rows) -> list:
    return [r for r in rows if r["status"] == "regressed"]


def _fmt(v: Optional[float]) -> str:
    if v is None:
        return "-"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def render(rows, threshold: float, base_label: str, cur_label: str) -> str:
    width = max([len(r["metric"]) for r in rows] + [10])
    head = (
        f"{'metric':<{width}} {'base':>14} {'current':>14} "
        f"{'drift':>9} {'status':>10}"
    )
    bad = len(regressed(rows))
    lines = [
        f"== regress: {base_label} -> {cur_label} "
        f"(threshold {threshold:.0%}, {bad} regression(s)) ==",
        head,
        "-" * len(head),
    ]
    for r in rows:
        drift = "-" if r["delta_pct"] is None else f"{r['delta_pct']:+.1f}%"
        lines.append(
            f"{r['metric']:<{width}} {_fmt(r['base']):>14} "
            f"{_fmt(r['current']):>14} {drift:>9} {r['status']:>10}"
        )
    return "\n".join(lines)
