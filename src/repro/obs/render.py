"""Text rendering for ``repro.obs ls`` / ``status`` / ``watch``.

All output here is plain ASCII in the house table style and — given a
pinned ``now`` (the ``--once`` path) — byte-deterministic: every
number derives from journal record timestamps, fixed-precision
formatting, and sorted iteration.  The live ``watch`` loop reuses the
same renderers and only adds screen-refresh chrome around them.
"""
from __future__ import annotations

from typing import Optional

__all__ = [
    "fmt_duration",
    "fmt_unix",
    "render_status",
    "render_ls",
    "render_serve",
]


def fmt_duration(s: Optional[float]) -> str:
    """``3723.4`` -> ``1h02m03s``; sub-minute values keep a decimal."""
    if s is None:
        return "-"
    s = max(0.0, float(s))
    if s < 60:
        return f"{s:.1f}s"
    m, sec = divmod(int(round(s)), 60)
    h, m = divmod(m, 60)
    if h:
        return f"{h}h{m:02d}m{sec:02d}s"
    return f"{m}m{sec:02d}s"


def fmt_unix(u: Optional[float]) -> str:
    """Absolute timestamps render as raw epoch seconds.

    Deliberately not local time: golden files must not depend on the
    host timezone, and epoch seconds diff cleanly.
    """
    if u is None:
        return "-"
    return f"@{u:.3f}"


def _live_word(status) -> str:
    if status.live is True:
        return "live"
    if status.live is False:
        return "STALE"
    return "-"


def _progress_bar(pct: Optional[float], width: int = 24) -> str:
    if pct is None:
        return "-" * width
    filled = int(width * min(100.0, max(0.0, pct)) / 100.0)
    return "#" * filled + "." * (width - filled)


def render_status(status, verbose: bool = True) -> str:
    """The full ``repro.obs status`` block for one run."""
    s = status
    lines = [
        f"run {s.run_id}  [{s.state}{'/' + _live_word(s) if s.live is not None else ''}]",
        f"  command:    {s.command or '-'}",
    ]
    if s.resumed_from:
        lines.append(f"  resumed:    from {s.resumed_from}")
    pct = "-" if s.progress_pct is None else f"{s.progress_pct:5.1f}%"
    lines += [
        f"  progress:   [{_progress_bar(s.progress_pct)}] {pct}",
        f"  units:      {s.planned} planned = {s.cached} cached + {s.done} done"
        f" + {s.failed} failed + {s.in_flight} in-flight + {s.queued} queued",
    ]
    if s.fail_kinds:
        kinds = "  ".join(f"{k}:{n}" for k, n in sorted(s.fail_kinds.items()))
        inj = f"  ({s.injected_failures} injected)" if s.injected_failures else ""
        lines.append(f"  failures:   {kinds}{inj}")
    tput = "-" if s.throughput_ups is None else f"{s.throughput_ups:.2f} units/s"
    lines.append(f"  throughput: {tput}   eta: {fmt_duration(s.eta_s)}")
    if s.heartbeat_age_s is not None:
        lines.append(
            f"  heartbeat:  {fmt_duration(s.heartbeat_age_s)} ago "
            f"(interval {fmt_duration(s.heartbeat_interval_s)})"
        )
    if s.stale_units:
        lines.append(
            f"  stale:      {len(s.stale_units)} in-flight unit(s) of a "
            "presumed-dead run (a --resume would re-run them):"
        )
        for label in s.stale_units:
            lines.append(f"              - {label}")
    if s.demoted:
        lines.append("  degraded:   run demoted to serial in-process execution")
    if verbose:
        lines.append(
            f"  journal:    {s.records} record(s), {s.torn_lines} torn, "
            f"{fmt_unix(s.started_unix)} .. {fmt_unix(s.updated_unix)}"
        )
    return "\n".join(lines)


def render_ls(statuses) -> str:
    """One row per run, newest first — the fleet overview."""
    if not statuses:
        return "no runs"
    head = (
        f"{'run':<22} {'state':<12} {'live':<6} {'progress':>8} "
        f"{'done':>6} {'fail':>5} {'eta':>8} {'updated':>14}"
    )
    lines = [head, "-" * len(head)]
    for s in statuses:
        pct = "-" if s.progress_pct is None else f"{s.progress_pct:.1f}%"
        lines.append(
            f"{s.run_id:<22} {s.state:<12} {_live_word(s):<6} {pct:>8} "
            f"{s.done:>6} {s.failed:>5} {fmt_duration(s.eta_s):>8} "
            f"{fmt_unix(s.updated_unix):>14}"
        )
    return "\n".join(lines)


def render_serve(doc: dict, live: bool) -> str:
    """The ``repro.obs serve`` block: a daemon, live or post-mortem.

    ``live`` selects between the daemon's own ``/status`` document and
    the WAL-replay summary assembled for a dead daemon (which carries a
    ``staleness`` verdict computed from the last heartbeat under the
    same 3x-interval rule run liveness uses).
    """
    if live:
        u = doc.get("units", {})
        t = doc.get("tickets", {})
        lines = [
            f"serve pid {doc.get('pid')}  [{doc.get('state')}/live]  "
            f"epoch {doc.get('epoch')}  up {fmt_duration(doc.get('uptime_s'))}",
            f"  units:      {u.get('queued', 0)} queued, "
            f"{u.get('leased', 0)} leased, {u.get('done', 0)} done, "
            f"{u.get('failed', 0)} failed",
            f"  tickets:    {t.get('complete', 0)}/{t.get('total', 0)} complete",
        ]
        for name, row in sorted(doc.get("tenants", {}).items()):
            lines.append(
                f"  tenant {name:<12} {row.get('outstanding', 0)} outstanding, "
                f"{row.get('inflight', 0)} in-flight, "
                f"{row.get('rejected', 0)} rejected"
            )
        for lease in doc.get("leases", []):
            lines.append(
                f"  lease #{lease.get('token')}  {lease.get('label')}  "
                f"pid {lease.get('pid')}  age {fmt_duration(lease.get('age_s'))}"
            )
        for dev, b in sorted(doc.get("breakers", {}).items()):
            if b.get("state") != "closed":
                lines.append(
                    f"  breaker {dev}: {b.get('state')} "
                    f"({b.get('consecutive_failures', 0)} consecutive failures)"
                )
        return "\n".join(lines)
    by_state = doc.get("by_state", {})
    lines = [
        f"serve [dead/{doc.get('staleness', 'no-heartbeat')}]  "
        f"epoch {doc.get('epoch')}  last state {doc.get('state')!r}",
        f"  units:      "
        + (", ".join(f"{n} {s}" for s, n in sorted(by_state.items()))
           or "none"),
        f"  tickets:    {doc.get('tickets', 0)}",
        f"  leases:     {doc.get('open_leases', 0)} open at death "
        f"(reclaimed on next boot)",
        f"  wal:        {doc.get('wal', '-')} "
        f"({doc.get('records', 0)} record(s), {doc.get('torn_lines', 0)} torn)",
    ]
    return "\n".join(lines)
