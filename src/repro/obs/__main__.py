"""CLI: observe sweep runs from outside the sweep process.

    python -m repro.obs ls                         # fleet overview
    python -m repro.obs status <run-id> [--json]   # one run, in depth
    python -m repro.obs watch --latest             # live re-rendered view
    python -m repro.obs watch --latest --once      # deterministic snapshot
    python -m repro.obs metrics --latest --check   # OpenMetrics textfile
    python -m repro.obs critpath trace.json        # wall-clock attribution
    python -m repro.obs regress A.json B.json      # bench drift attribution

Everything reads artifacts the engine already wrote durably (journal
WAL, heartbeat records, metrics snapshots, merged traces) — a hung or
crashed sweep is as observable as a healthy one.

``--once`` snapshots pin *now* to the journal's last record timestamp,
so their bytes depend only on journal contents — the property the
golden-file tests and CI assertions rely on.  Live modes use the wall
clock, which is what makes heartbeat-staleness detection meaningful.

Exits 0 on success; 1 when ``metrics --check`` finds lint problems or
``regress`` finds a regression; 2 on bad usage.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .. import exec as rexec
from ..telemetry import metrics as tmetrics
from . import critpath as cp
from . import openmetrics as om
from . import regress as rg
from .registry import find_run, runs
from .render import render_ls, render_serve, render_status

__all__ = ["main"]


def _add_cache_dir(ap) -> None:
    ap.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep workdir to observe (default: $REPRO_CACHE_DIR or .repro-cache)",
    )


def _add_run_selector(ap) -> None:
    ap.add_argument(
        "run", nargs="?", default=None, metavar="RUN-ID",
        help="run to observe (default: the most recently active)",
    )
    ap.add_argument(
        "--latest", action="store_true",
        help="observe the most recently active run (same as omitting RUN-ID)",
    )


def _cache_dir(args) -> str:
    return args.cache_dir or rexec.default_cache_dir()


def _resolve(args):
    token = None if args.latest else args.run
    return find_run(_cache_dir(args), token)


# -- subcommands -----------------------------------------------------------
def _cmd_ls(args) -> int:
    trackers = runs(_cache_dir(args))
    statuses = [t.status() for t in trackers]
    if args.json:
        json.dump([s.as_dict() for s in statuses], sys.stdout, indent=1,
                  sort_keys=True)
        print()
    else:
        print(render_ls(statuses))
    return 0


def _cmd_status(args) -> int:
    tracker = _resolve(args)
    now = tracker.last_unix if args.once else None
    status = tracker.status(now=now)
    if args.json:
        json.dump(status.as_dict(), sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print(render_status(status))
    return 0


def _cmd_watch(args) -> int:
    tracker = _resolve(args)
    if args.once:
        print(render_status(tracker.status(now=tracker.last_unix)))
        return 0
    tty = sys.stdout.isatty()
    try:
        while True:
            tracker.poll()
            status = tracker.status()
            block = render_status(status)
            if tty:
                sys.stdout.write("\x1b[2J\x1b[H" + block + "\n")
            else:
                print(block)
                print()
            sys.stdout.flush()
            if status.state not in ("running", "planned") or status.live is False:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_metrics(args) -> int:
    tracker = _resolve(args)
    path = tmetrics.snapshot_path(_cache_dir(args), tracker.run_id)
    try:
        doc = tmetrics.load_snapshot_file(path)
    except OSError:
        raise SystemExit(
            f"no metrics snapshot at {path} (the engine flushes one per "
            "heartbeat; has the run produced a beat yet?)"
        )
    text = om.render(doc["metrics"], run_id=doc.get("run_id", tracker.run_id))
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"obs: wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    if args.check:
        problems = om.lint(text)
        for p in problems:
            print(f"obs: lint: {p}", file=sys.stderr)
        if problems:
            return 1
        print("obs: exporter output lints clean", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    """Render the sweep daemon's /status — live over HTTP, or a WAL
    post-mortem (with the 3x-heartbeat staleness verdict) when dead."""
    from ..serve.client import discover
    from ..serve.wal import replay as serve_replay
    from ..serve.wal import wal_path
    from .registry import STALE_BEATS

    cache_dir = _cache_dir(args)
    client = discover(cache_dir)
    if client is not None:
        doc = client.status()
        live = True
    else:
        rep = serve_replay(wal_path(cache_dir))
        doc = rep.summary()
        doc["wal"] = str(wal_path(cache_dir))
        doc["records"] = rep.records
        doc["torn_lines"] = rep.torn_lines
        hb = rep.last_heartbeat
        if hb and isinstance(hb.get("unix"), (int, float)):
            interval = float(hb.get("interval") or 5.0)
            age = time.time() - hb["unix"]
            doc["last_heartbeat_age_s"] = round(age, 3)
            doc["staleness"] = (
                "stale" if age > STALE_BEATS * interval else "recent"
            )
        live = False
    if args.json:
        json.dump({"live": live, **doc}, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print(render_serve(doc, live))
    return 0


def _cmd_critpath(args) -> int:
    result = cp.analyze(cp.load_trace(args.trace), top=args.top)
    if args.diff:
        other = cp.analyze(cp.load_trace(args.diff), top=args.top)
        if args.json:
            json.dump(
                {"base": result, "current": other,
                 "diff": cp.diff(result, other)},
                sys.stdout, indent=1, sort_keys=True)
            print()
        else:
            print(cp.render(result, label=args.trace))
            print()
            print(cp.render(other, label=args.diff))
            print()
            print(cp.render_diff(cp.diff(result, other), args.trace, args.diff))
    elif args.json:
        json.dump(result, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print(cp.render(result, label=args.trace))
    return 0


def _load_bench_point(path: str):
    """A BENCH_*.json payload, or the last record of a history jsonl."""
    if not path.endswith(".jsonl"):
        with open(path) as f:
            return json.load(f), path
    from ..bench import load_history

    records = load_history(path)
    if not records:
        raise SystemExit(f"{path}: empty bench history")
    return records[-1], f"{path}[-1]"


def _cmd_regress(args) -> int:
    if args.history:
        from ..bench import load_history

        records = load_history(args.history)
        if len(records) < 2:
            raise SystemExit(
                f"{args.history}: need >= 2 history records to regress "
                f"(have {len(records)})"
            )
        base, blabel = records[-1 - args.tail], f"{args.history}[-{1 + args.tail}]"
        current, clabel = records[-1], f"{args.history}[-1]"
    else:
        if not (args.base and args.current):
            raise SystemExit(
                "regress: give BASE and CURRENT snapshot files, or --history"
            )
        base, blabel = _load_bench_point(args.base)
        current, clabel = _load_bench_point(args.current)
    rows = rg.compare(base, current, threshold=args.threshold)
    if args.json:
        json.dump(rows, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print(rg.render(rows, args.threshold, blabel, clabel))
    return 1 if rg.regressed(rows) else 0


# -- entry -----------------------------------------------------------------
def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observe sweep runs from outside the sweep process",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("ls", help="list every run under the cache dir")
    _add_cache_dir(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_ls)

    p = sub.add_parser("status", help="derived status of one run")
    _add_run_selector(p)
    _add_cache_dir(p)
    p.add_argument("--json", action="store_true")
    p.add_argument(
        "--once", action="store_true",
        help="deterministic snapshot: pin 'now' to the journal's last record",
    )
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("watch", help="live re-rendered status of one run")
    _add_run_selector(p)
    _add_cache_dir(p)
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SEC",
        help="seconds between journal polls (default 2)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render one deterministic snapshot and exit",
    )
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "metrics", help="render a run's metrics snapshot as OpenMetrics"
    )
    _add_run_selector(p)
    _add_cache_dir(p)
    p.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the textfile here instead of stdout",
    )
    p.add_argument(
        "--check", action="store_true",
        help="lint the rendered textfile; exit 1 on problems",
    )
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser(
        "serve", help="status of the sweep daemon (live API or WAL post-mortem)"
    )
    _add_cache_dir(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "critpath", help="per-category wall attribution of a merged trace"
    )
    p.add_argument("trace", metavar="TRACE.json")
    p.add_argument(
        "--diff", default=None, metavar="TRACE2.json",
        help="also analyze a second trace and report per-category deltas",
    )
    p.add_argument("--top", type=int, default=10, metavar="K")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_critpath)

    p = sub.add_parser(
        "regress", help="drift attribution between two bench snapshots"
    )
    p.add_argument("base", nargs="?", default=None, metavar="BASE.json")
    p.add_argument("current", nargs="?", default=None, metavar="CURRENT.json")
    p.add_argument(
        "--history", default=None, metavar="HISTORY.jsonl",
        help="compare entries of a bench history file instead",
    )
    p.add_argument(
        "--tail", type=int, default=1, metavar="N",
        help="with --history: compare the last entry against N entries back",
    )
    p.add_argument(
        "--threshold", type=float, default=rg.DEFAULT_THRESHOLD, metavar="FRAC",
        help="relative drift tolerated per metric (default 0.2 = 20%%)",
    )
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_regress)

    args = ap.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Reader (head, less, ...) went away; silence the interpreter's
        # stderr complaint on shutdown and exit like a killed pipe writer.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    raise SystemExit(main())
