"""Render a metrics snapshot as an OpenMetrics/Prometheus textfile.

``repro.obs metrics`` turns the per-run snapshot the engine's heartbeat
thread flushes (:func:`repro.telemetry.metrics.write_snapshot_file`)
into the textfile-collector format every Prometheus-compatible scraper
understands::

    # HELP repro_journal_appends_total repro counter journal.appends
    # TYPE repro_journal_appends_total counter
    repro_journal_appends_total{run_id="..."} 42
    ...
    # EOF

Mapping rules:

* metric names are prefixed ``repro_`` and sanitised to the metric
  charset (dots become underscores);
* counters get the mandatory ``_total`` suffix;
* gauges render as two families — the current value and the
  ``_max`` high-water mark (both gauges);
* histograms render cumulative ``_bucket{le="..."}`` series (ending at
  ``le="+Inf"``) plus ``_sum`` and ``_count``, straight from the
  registry's fixed-boundary counts;
* every sample carries a ``run_id`` label so textfiles from several
  runs can be concatenated without collisions.

Output is byte-deterministic: families sort by name, labels are fixed,
floats use ``repr``-stable formatting.  :func:`lint` re-parses a
rendered document and reports violations (duplicate families, bad
names, non-monotonic buckets, missing ``# EOF``) — CI runs it against
the live exporter output.
"""
from __future__ import annotations

import re

__all__ = ["render", "lint", "metric_name"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """``journal.append_s`` -> ``repro_journal_append_s``."""
    base = _SANITIZE.sub("_", name)
    if not base or not _NAME_OK.match(base):
        base = "_" + _SANITIZE.sub("_", base)
    return f"repro_{base}"


def _num(v: float) -> str:
    """Prometheus float formatting: integers bare, else shortest repr."""
    f = float(v)
    if f != f:
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels(run_id: str) -> str:
    esc = run_id.replace("\\", "\\\\").replace('"', '\\"')
    return f'{{run_id="{esc}"}}'


def _family(lines, name, mtype, help_text, samples) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {mtype}")
    lines.extend(samples)


def render(snapshot: dict, run_id: str = "unknown") -> str:
    """One snapshot (``{name: instrument.as_dict()}``) -> textfile body."""
    lbl = _labels(run_id)
    esc = run_id.replace("\\", "\\\\").replace('"', '\\"')
    families = []  # (family_name, mtype, help, [sample lines])
    for raw in sorted(snapshot):
        m = snapshot[raw]
        kind = m.get("type")
        base = metric_name(raw)
        if kind == "counter":
            families.append((
                f"{base}_total", "counter", f"repro counter {raw}",
                [f"{base}_total{lbl} {_num(m['value'])}"],
            ))
        elif kind == "gauge":
            families.append((
                base, "gauge", f"repro gauge {raw}",
                [f"{base}{lbl} {_num(m['value'])}"],
            ))
            families.append((
                f"{base}_max", "gauge", f"repro gauge {raw} high-water mark",
                [f"{base}_max{lbl} {_num(m['max'])}"],
            ))
        elif kind == "histogram":
            samples = []
            cum = 0
            for b, c in zip(m["boundaries"], m["counts"]):
                cum += c
                samples.append(
                    f'{base}_bucket{{run_id="{esc}",le="{_num(b)}"}} {cum}'
                )
            samples.append(
                f'{base}_bucket{{run_id="{esc}",le="+Inf"}} {m["count"]}'
            )
            samples.append(f"{base}_sum{lbl} {_num(m['sum'])}")
            samples.append(f"{base}_count{lbl} {m['count']}")
            families.append((
                base, "histogram", f"repro histogram {raw}", samples,
            ))
        # unknown instrument types are skipped, same as merge_snapshot
    families.sort(key=lambda fam: fam[0])
    lines: list = []
    for name, mtype, help_text, samples in families:
        _family(lines, name, mtype, help_text, samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def lint(text: str) -> list:
    """Validate a rendered textfile; returns a list of problem strings.

    Checks the invariants a Prometheus textfile collector cares about:
    unique family declarations, legal metric names, cumulative
    (monotonically non-decreasing) histogram buckets, samples only for
    declared families, and the ``# EOF`` terminator.
    """
    problems: list = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator")
    declared: dict = {}
    bucket_last: dict = {}
    for i, line in enumerate(lines, 1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) < 4:
                problems.append(f"line {i}: malformed TYPE")
                continue
            name, mtype = parts[2], parts[3]
            if name in declared:
                problems.append(f"line {i}: duplicate family {name!r}")
            declared[name] = mtype
            if not _NAME_OK.match(name):
                problems.append(f"line {i}: bad metric name {name!r}")
            continue
        if line.startswith("#"):
            continue
        # a sample: name{labels} value
        sample = line.split("{", 1)[0].split()[0]
        fam = sample
        for suffix in ("_bucket", "_sum", "_count"):
            if sample.endswith(suffix) and sample[: -len(suffix)] in declared:
                fam = sample[: -len(suffix)]
                break
        if fam not in declared and sample not in declared:
            problems.append(f"line {i}: sample for undeclared family {sample!r}")
            continue
        if sample.endswith("_bucket") and declared.get(fam) == "histogram":
            try:
                val = float(line.rsplit(" ", 1)[1])
            except (IndexError, ValueError):
                problems.append(f"line {i}: unparseable bucket sample")
                continue
            if val < bucket_last.get(fam, 0.0):
                problems.append(
                    f"line {i}: histogram {fam!r} buckets not cumulative"
                )
            bucket_last[fam] = val
            if 'le="+Inf"' in line:
                bucket_last.pop(fam, None)  # next series starts fresh
    return problems
