"""repro — reproduction of "A Comprehensive Performance Comparison of
CUDA and OpenCL" (Fang, Varbanescu, Sips; ICPP 2011) on a fully
simulated GPU substrate.

Layers (bottom up): :mod:`repro.kir` (kernel IR + dialects),
:mod:`repro.ptx` (virtual ISA), :mod:`repro.compiler` (NVOPENCC / CLC
front ends + PTXAS), :mod:`repro.arch` (device models),
:mod:`repro.sim` (SIMT functional+timing simulator),
:mod:`repro.runtime` (CUDA and OpenCL host APIs),
:mod:`repro.benchsuite` (the 16 benchmarks of Table II),
:mod:`repro.core` (PR metric, fair-comparison methodology, attribution),
:mod:`repro.experiments` (per-figure/table harness).
"""
from ._version import __version__

__all__ = ["__version__"]
