"""Run a benchmark under one runtime and collect its launch profiles.

The simulator records a :class:`~repro.prof.profile.LaunchProfile` for
every launch (``SimDevice.profiles``); this module runs a benchmark
through the normal host path and hands back the per-launch records plus
the benchmark's own result — the entry point behind
``python -m repro.prof``.
"""
from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from ..arch.specs import ALL_DEVICES, DeviceSpec
from ..benchsuite.base import BenchResult, HostAPI, host_for
from ..benchsuite.registry import REGISTRY, get_benchmark
from .profile import LaunchProfile, aggregate

__all__ = [
    "BenchmarkProfile",
    "profile_benchmark",
    "resolve_device",
    "sim_device_of",
]


def resolve_device(name_or_spec) -> DeviceSpec:
    """Device lookup tolerant of CLI spellings (``gtx480``, ``GTX480``)."""
    if isinstance(name_or_spec, DeviceSpec):
        return name_or_spec
    want = str(name_or_spec).lower().replace("-", "").replace("_", "")
    for name, spec in ALL_DEVICES.items():
        if name.lower().replace("/", "").replace("-", "") == want.replace("/", ""):
            return spec
    raise KeyError(
        f"unknown device {name_or_spec!r}; available: {sorted(ALL_DEVICES)}"
    )


def sim_device_of(host: HostAPI):
    """The :class:`~repro.sim.device.SimDevice` behind either host API."""
    if hasattr(host, "ctx"):  # CudaHost
        return host.ctx.device
    return host.clctx.device.sim  # OpenCLHost


@dataclasses.dataclass
class BenchmarkProfile:
    """One benchmark run's worth of profiling evidence."""

    benchmark: str
    api: str
    device: str
    result: BenchResult
    launches: list  # list[LaunchProfile]

    @property
    def summary(self) -> Optional[LaunchProfile]:
        return aggregate(self.launches, label=self.benchmark)

    def check(self) -> list:
        out = []
        for i, p in enumerate(self.launches):
            out += [f"launch {i}: {v}" for v in p.check()]
        return out


def profile_benchmark(
    name: str,
    device,
    api: str = "cuda",
    size: str = "small",
    options: Optional[Mapping] = None,
) -> BenchmarkProfile:
    """Run benchmark ``name`` once under ``api`` and collect profiles."""
    spec = resolve_device(device)
    canonical = {k.lower(): k for k in REGISTRY}.get(name.lower(), name)
    bench = get_benchmark(canonical)
    host = host_for(api, spec)
    result = bench.run(host, size=size, options=options)
    sim = sim_device_of(host)
    return BenchmarkProfile(
        benchmark=bench.name,
        api=api,
        device=spec.name,
        result=result,
        launches=list(sim.profiles),
    )
