"""chrome://tracing exporter for launch profiles.

Emits the Trace Event Format (the JSON understood by chrome://tracing,
Perfetto, and Speedscope): one "complete" (``ph: "X"``) slice per
launch-overhead span and per kernel span on the device's virtual
timeline, plus counter (``ph: "C"``) tracks for DRAM traffic and
transactions-per-request.  Timestamps are the runtimes' virtual clock in
microseconds, so traces are exactly reproducible run to run.
"""
from __future__ import annotations

import json
from typing import Iterable, Optional

from .profile import LaunchProfile

__all__ = ["chrome_trace", "write_chrome_trace"]

_US = 1e6  # trace-event timestamps are microseconds


def chrome_trace(
    profiles: Iterable[LaunchProfile], process_name: str = "repro"
) -> dict:
    """Build the trace-event dict for a sequence of launch profiles."""
    events: list = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "kernels"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 2,
            "args": {"name": "launch overhead"},
        },
    ]
    for i, p in enumerate(profiles):
        if p.launch_overhead_s > 0:
            events.append(
                {
                    "name": f"{p.api} launch",
                    "cat": "overhead",
                    "ph": "X",
                    "pid": 1,
                    "tid": 2,
                    "ts": p.queued_s * _US,
                    "dur": p.launch_overhead_s * _US,
                    "args": {"kernel": p.kernel},
                }
            )
        events.append(
            {
                "name": p.kernel,
                "cat": "kernel",
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": p.start_s * _US,
                "dur": max(p.total_s, 1e-9) * _US,
                "args": {
                    "device": p.device,
                    "api": p.api,
                    "grid": list(p.grid),
                    "block": list(p.block),
                    "bound": p.bound_term or p.bound,
                    "transactions_per_request": round(
                        p.transactions_per_request, 3
                    ),
                    "dram_bytes": p.dram_bytes,
                    "occupancy_warps": p.occupancy_warps,
                    "cache_hit_rates": {
                        k: round(v.hit_rate(), 4) for k, v in p.caches.items()
                    },
                    "launch_index": i,
                },
            }
        )
        events.append(
            {
                "name": "DRAM bytes",
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": p.start_s * _US,
                "args": {"bytes": p.dram_bytes},
            }
        )
        events.append(
            {
                "name": "transactions/request",
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": p.start_s * _US,
                "args": {"tpr": round(p.transactions_per_request, 3)},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    profiles: Iterable[LaunchProfile],
    path: str,
    process_name: Optional[str] = None,
) -> str:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    trace = chrome_trace(profiles, process_name or "repro")
    with open(path, "w") as f:
        json.dump(trace, f, indent=1)
    return path
