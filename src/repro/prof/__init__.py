"""``repro.prof`` — structured per-launch profiling.

Lightweight imports only: :mod:`~repro.prof.profile`, report, and trace
have no simulator dependencies, so ``sim.device`` can attach profiles
without an import cycle.  The benchmark-running collector lives in
:mod:`~repro.prof.collect` (import it explicitly, or use the CLI:
``python -m repro.prof <benchmark> --device gtx480``).
"""
from .profile import LaunchProfile, aggregate, build_launch_profile
from .report import render_profile, render_run
from .trace import chrome_trace, write_chrome_trace

__all__ = [
    "LaunchProfile",
    "aggregate",
    "build_launch_profile",
    "render_profile",
    "render_run",
    "chrome_trace",
    "write_chrome_trace",
]
