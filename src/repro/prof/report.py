"""ASCII rendering of launch profiles (the ``repro.prof`` report).

One launch renders as a sectioned card: host phases, timing-model
breakdown with the bounding term, issue cycles by Table-V class,
coalescer metrics, cache table, shared/spill counters, occupancy.
A run of launches renders as a per-launch table plus the aggregate card.
"""
from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .profile import LaunchProfile, aggregate

__all__ = [
    "render_profile",
    "render_run",
    "render_sweep",
    "render_failures",
    "render_preflight",
]

#: Table-V class display order
_CLASS_ORDER = [
    "Arithmetic",
    "Logic/Shift",
    "Data Movement",
    "Flow Control",
    "Synchronization",
    "Other",
]


def _fmt_s(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.2f} us"


def _fmt_bytes(b: float) -> str:
    if b >= 1 << 30:
        return f"{b / (1 << 30):.2f} GiB"
    if b >= 1 << 20:
        return f"{b / (1 << 20):.2f} MiB"
    if b >= 1 << 10:
        return f"{b / (1 << 10):.2f} KiB"
    return f"{b:.0f} B"


def render_profile(p: LaunchProfile, title: Optional[str] = None) -> str:
    lines = [
        f"== {title or p.kernel} on {p.device} ({p.api}) ==",
        f"grid {p.grid} block {p.block}   blocks run: {p.blocks}   "
        f"barriers: {p.barriers}",
        "",
        "host phases:",
        f"  compile         {_fmt_s(p.compile_s):>12}",
        f"  launch overhead {_fmt_s(p.launch_overhead_s):>12}",
        f"  kernel          {_fmt_s(p.total_s):>12}",
        "",
        f"timing model (bound: {p.bound_term or p.bound}):",
        f"  comp {_fmt_s(p.comp_s):>12}   mem {_fmt_s(p.mem_s):>12}   "
        f"bw {_fmt_s(p.bw_s):>12}   camping {_fmt_s(p.hot_s):>12}",
        "",
        "issue cycles by instruction class:",
    ]
    total_cyc = sum(p.issue_cycles.values()) or 1.0
    for klass in _CLASS_ORDER:
        cycles = p.issue_cycles.get(klass)
        if cycles is None:
            continue
        lines.append(
            f"  {klass:<16} {cycles:>14.0f}  ({100.0 * cycles / total_cyc:5.1f}%)"
        )
    lines += [
        "",
        "global memory (coalescer):",
        f"  requests     {p.gmem_requests:>12}",
        f"  transactions {p.gmem_transactions:>12}"
        f"   ({p.transactions_per_request:.2f} per request)",
        f"  DRAM traffic {_fmt_bytes(p.dram_bytes):>12}",
        "",
        "caches:",
        f"  {'cache':<8}{'accesses':>10}{'hits':>10}{'misses':>10}{'hit rate':>10}",
    ]
    for name in ("const", "tex", "l1", "l2", "null"):
        st = p.caches.get(name)
        if st is None:
            continue
        lines.append(
            f"  {name:<8}{st.accesses:>10}{st.hits:>10}{st.misses:>10}"
            f"{st.hit_rate():>9.1%}"
        )
    lines += [
        "",
        "shared memory / spills:",
        f"  shared accesses {p.shared_accesses:>10}   bank replays "
        f"{p.shared_bank_replays:>8}",
        f"  spill traffic   {_fmt_bytes(p.spill_bytes):>10}",
        "",
        f"occupancy: {p.occupancy_warps} warps/CU, {p.occupancy_blocks} "
        f"blocks/CU (limiter: {p.occupancy_limiter or 'n/a'})",
        f"dynamic warp instructions: {p.warp_instructions} "
        f"({p.mem_instructions} memory)",
    ]
    violations = p.check()
    if violations:
        lines.append("")
        lines.append("INVARIANT VIOLATIONS:")
        lines += [f"  !! {v}" for v in violations]
    return "\n".join(lines)


def render_run(
    profiles: Sequence[LaunchProfile], title: str = "run"
) -> str:
    """Per-launch table + aggregate card for a whole benchmark run."""
    if not profiles:
        return f"== {title}: no launches recorded =="
    head = (
        f"{'#':>3} {'kernel':<24} {'grid':>12} {'time':>12} "
        f"{'bound':>10} {'tpr':>6} {'DRAM':>10}"
    )
    lines = [f"== {title}: {len(profiles)} launch(es) ==", head, "-" * len(head)]
    for i, p in enumerate(profiles):
        g = "x".join(str(d) for d in p.grid)
        lines.append(
            f"{i:>3} {p.kernel[:24]:<24} {g:>12} {_fmt_s(p.total_s):>12} "
            f"{(p.bound_term or p.bound):>10} "
            f"{p.transactions_per_request:>6.2f} "
            f"{_fmt_bytes(p.dram_bytes):>10}"
        )
    agg = aggregate(profiles, label=f"{title} (aggregate)")
    lines += ["", render_profile(agg, title=f"{title} aggregate")]
    return "\n".join(lines)


def render_sweep(stats, title: str = "sweep") -> str:
    """Per-unit timing + cache hit/miss table for a sweep execution.

    ``stats`` is a :class:`repro.exec.SweepStats`; this lives on the
    profiler's report path so the sweep engine's accounting renders in
    the same ASCII style as the launch profiles it summarizes.
    """
    recs = list(stats.records)
    fails = list(getattr(stats, "failures", ()))
    if not recs and not fails:
        return f"== {title}: no work units served =="
    width = max(24, max((len(r.label) for r in recs), default=0))
    head = f"{'unit':<{width}} {'served':>8} {'sim time':>12} {'digest':>10}"
    failed = f", {len(fails)} failed" if fails else ""
    lines = [
        f"== {title}: {len(recs)} unit request(s), {stats.hits} hit(s), "
        f"{stats.misses} simulated{failed} ==",
        head,
        "-" * len(head),
    ]
    for r in recs:
        lines.append(
            f"{r.label:<{width}} {r.source:>8} {_fmt_s(r.sim_seconds):>12} "
            f"{r.digest[:8]:>10}"
        )
    lines.append("-" * len(head))
    lines.append(
        f"{'total simulation time':<{width}} {'':>8} "
        f"{_fmt_s(stats.sim_seconds):>12} {'':>10}"
    )
    mem = getattr(stats, "mem_hits", None)
    if mem is not None:
        quarantined = getattr(stats, "quarantined", 0)
        q = f", {quarantined} quarantined" if quarantined else ""
        lines.append(
            f"cache: {mem} memo hit(s), {stats.disk_hits} disk hit(s){q}, "
            f"{_fmt_s(stats.cache_serve_seconds)} sim time served from cache"
        )
    resumed = getattr(stats, "resumed", None)
    if resumed:
        lines.append(
            f"resume: continued run {resumed.get('from')} "
            f"({resumed.get('completed', 0)} completed, "
            f"{resumed.get('in_flight', 0)} in flight at interrupt); "
            f"{getattr(stats, 'resumed_hits', 0)} unit(s) served from its "
            "journaled results"
        )
    checked = getattr(stats, "preflight_checked", 0)
    if checked:
        lines.append(
            f"preflight: {checked} cold unit(s) checked, "
            f"{len(getattr(stats, 'preflight', ()))} predicted ABT"
        )
    demoted = getattr(stats, "demoted", None)
    if demoted:
        lines.append(
            f"DEGRADED MODE: demoted to sequential after "
            f"{demoted.get('incidents')} broken-pool incident(s) "
            f"({demoted.get('reason')})"
        )
    pre = list(getattr(stats, "preflight", ()))
    if pre:
        lines += ["", render_preflight(pre)]
    if fails:
        lines += ["", render_failures(stats)]
    return "\n".join(lines)


def render_preflight(verdicts, title: str = "predicted ABT (preflight)") -> str:
    """Units the preflight guard says will abort at enqueue.

    These are Table VI "ABT" rows *predicted before any launch*: the
    guard compiled the unit's kernels and applied the simulator's own
    admission checks.  The units still execute (the verdict is
    advisory), so the table is a forecast the run then confirms.
    """
    rows = [v if isinstance(v, dict) else v.as_dict() for v in verdicts]
    if not rows:
        return f"== {title}: none =="
    width = max(24, max(len(r["label"]) for r in rows))
    head = (
        f"{'unit':<{width}} {'kernel':<18} {'code':<22} "
        f"{'regs':>5} {'local':>8} {'wg':>5}"
    )
    lines = [f"== {title}: {len(rows)} ==", head, "-" * len(head)]
    for r in rows:
        lines.append(
            f"{r['label']:<{width}} {str(r.get('kernel'))[:18]:<18} "
            f"{str(r.get('code')):<22} {r.get('registers', 0):>5} "
            f"{_fmt_bytes(r.get('shared_bytes', 0)):>8} "
            f"{r.get('threads', 0):>5}"
        )
    return "\n".join(lines)


def render_failures(stats, title: str = "failed units") -> str:
    """The failure table of a sweep: the paper's Table VI, operationally.

    One row per :class:`repro.exec.FailedUnit` — which unit, its
    classified :class:`~repro.errors.FailureKind`, how many attempts it
    got, whether the fault was injected by ``repro.faults`` (chaos
    runs), and the final error.
    """
    fails = list(getattr(stats, "failures", ()))
    if not fails:
        return f"== {title}: none =="
    width = max(24, max(len(f.label) for f in fails))
    head = (
        f"{'unit':<{width}} {'kind':>10} {'attempts':>9} {'injected':>9}  error"
    )
    lines = [f"== {title}: {len(fails)} ==", head, "-" * len(head)]
    for f in fails:
        msg = f.error if len(f.error) <= 60 else f.error[:57] + "..."
        lines.append(
            f"{f.label:<{width}} {f.kind:>10} {f.attempts:>9} "
            f"{'yes' if f.injected else 'no':>9}  {msg}"
        )
    return "\n".join(lines)
