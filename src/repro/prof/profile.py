"""Per-launch profiling records — the evidence behind gap attribution.

A :class:`LaunchProfile` captures everything the simulator knows about
one kernel launch: where the host-side time went (compile, launch
overhead, kernel), how the issue stream decomposed into the Table-V
instruction classes, what the coalescer did (transactions per request,
DRAM bytes), how every cache behaved, shared-memory bank behaviour,
register-spill traffic, occupancy, and the timing-model breakdown with
the term that actually bounded the launch.

This is the simulated analogue of ``clGetEventProfilingInfo`` / CUDA
events + a hardware counter read (cf. Karimi et al., arXiv:1005.2581):
the runtimes attach one of these records to every event, and
``core.attribution`` cites the counters instead of re-deriving them.

Layering: this module depends only on ``arch`` (CacheStats, specs) and
``ptx.isa`` (instruction classes) so the simulator can import it without
cycles.
"""
from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional

from ..arch.caches import CacheStats
from ..ptx.isa import IClass, Op, klass_of

__all__ = ["LaunchProfile", "build_launch_profile", "aggregate"]


def _class_of_key(key: str) -> IClass:
    """Map a Table-V row name (``ld.global``, ``mad``, ...) to its class."""
    return klass_of(Op(key.split(".")[0]))


@dataclasses.dataclass
class LaunchProfile:
    """Structured counters for one kernel launch."""

    kernel: str
    device: str
    grid: tuple
    block: tuple

    # -- host-side phases (the runtime layer fills these in) -------------
    api: str = "sim"  # "cuda" | "opencl" | "sim"
    compile_s: float = 0.0
    launch_overhead_s: float = 0.0
    #: virtual-clock timestamps (CL_PROFILING_COMMAND_{QUEUED,START,END})
    queued_s: float = 0.0
    start_s: float = 0.0
    end_s: float = 0.0

    # -- issue stream -----------------------------------------------------
    #: issue/latency cycles per Table-V instruction class name
    issue_cycles: dict = dataclasses.field(default_factory=dict)
    #: dynamic warp-instruction counts per Table-V row
    instr_counts: dict = dataclasses.field(default_factory=dict)
    warp_instructions: int = 0
    mem_instructions: int = 0
    blocks: int = 0
    barriers: int = 0

    # -- coalescer --------------------------------------------------------
    gmem_requests: int = 0
    gmem_transactions: int = 0
    dram_bytes: float = 0.0

    # -- caches (name -> CacheStats): const, tex, l1/l2 or null -----------
    caches: dict = dataclasses.field(default_factory=dict)

    # -- shared memory / spills -------------------------------------------
    shared_accesses: int = 0
    shared_bank_replays: int = 0
    spill_bytes: float = 0.0

    # -- occupancy --------------------------------------------------------
    occupancy_warps: int = 0
    occupancy_blocks: int = 0
    occupancy_limiter: str = ""

    # -- timing-model breakdown -------------------------------------------
    total_s: float = 0.0
    comp_s: float = 0.0
    mem_s: float = 0.0
    bw_s: float = 0.0
    hot_s: float = 0.0
    bound: str = ""
    bound_term: str = ""
    #: DRAM bytes as seen by the timing model (must equal ``dram_bytes``)
    timing_dram_bytes: float = 0.0

    # -- derived metrics ---------------------------------------------------
    @property
    def transactions_per_request(self) -> float:
        """The classic coalescing metric; 1.0 is perfectly coalesced."""
        if not self.gmem_requests:
            return 0.0
        return self.gmem_transactions / self.gmem_requests

    def hit_rate(self, cache: str) -> float:
        st = self.caches.get(cache)
        return st.hit_rate() if st is not None else 0.0

    @property
    def texture_hit_rate(self) -> float:
        return self.hit_rate("tex")

    @property
    def kernel_seconds(self) -> float:
        return self.total_s

    def check(self) -> list:
        """Verify the profiler's internal invariants; returns violations."""
        out = []
        for name, st in self.caches.items():
            if st.hits + st.misses != st.accesses:
                out.append(f"cache {name}: hits+misses != accesses")
            if st.hits < 0 or st.misses < 0:
                out.append(f"cache {name}: negative counters")
        if self.gmem_requests and self.transactions_per_request < 1.0:
            out.append(
                f"transactions/request = {self.transactions_per_request:.3f} < 1"
            )
        if abs(self.dram_bytes - self.timing_dram_bytes) > 1e-6:
            out.append(
                f"profiled DRAM bytes {self.dram_bytes} != timing model "
                f"{self.timing_dram_bytes}"
            )
        if self.shared_bank_replays < 0 or self.spill_bytes < 0:
            out.append("negative shared/spill counters")
        return out

    def as_dict(self) -> dict:
        """JSON-friendly flattening (used by the chrome-trace exporter)."""
        d = dataclasses.asdict(self)
        d["caches"] = {
            k: {"hits": v.hits, "misses": v.misses, "hit_rate": v.hit_rate()}
            for k, v in self.caches.items()
        }
        d["transactions_per_request"] = self.transactions_per_request
        return d


def build_launch_profile(
    kernel: str,
    device: str,
    grid: tuple,
    block: tuple,
    stats,
    occ,
    timing,
    mem_delta: Mapping,
) -> LaunchProfile:
    """Assemble the record from one launch's simulator outputs.

    ``stats``/``occ``/``timing`` are the interpreter, occupancy, and
    timing-model results; ``mem_delta`` is
    ``MemorySystem.prof_since(snapshot)``.
    """
    issue: dict = {}
    for key, cycles in stats.cyc_hist.items():
        kname = _class_of_key(key).value
        issue[kname] = issue.get(kname, 0.0) + float(cycles)
    return LaunchProfile(
        kernel=kernel,
        device=device,
        grid=tuple(grid),
        block=tuple(block),
        issue_cycles=issue,
        instr_counts=dict(stats.dyn_hist),
        warp_instructions=stats.warp_instructions,
        mem_instructions=stats.mem_instructions,
        blocks=stats.blocks,
        barriers=stats.barriers,
        gmem_requests=int(mem_delta["gmem_requests"]),
        gmem_transactions=int(mem_delta["gmem_transactions"]),
        dram_bytes=float(mem_delta["dram_bytes"].sum()),
        caches=dict(mem_delta["caches"]),
        shared_accesses=int(mem_delta["shared_accesses"]),
        shared_bank_replays=int(mem_delta["shared_replays"]),
        spill_bytes=float(mem_delta["spill_bytes"]),
        occupancy_warps=occ.warps_per_cu,
        occupancy_blocks=occ.blocks_per_cu,
        occupancy_limiter=occ.limiter,
        total_s=timing.total_s,
        comp_s=timing.comp_s,
        mem_s=timing.mem_s,
        bw_s=timing.bw_s,
        hot_s=timing.hot_s,
        bound=timing.bound,
        bound_term=timing.bound_term,
        timing_dram_bytes=timing.dram_bytes,
    )


def aggregate(
    profiles: Iterable[LaunchProfile], label: str = "*"
) -> Optional[LaunchProfile]:
    """Sum a sequence of launch profiles into one roll-up record.

    Additive counters sum; occupancy fields keep the last launch's
    values; ``bound_term`` becomes the term that dominated the summed
    kernel time.  Returns ``None`` for an empty sequence.
    """
    profiles = list(profiles)
    if not profiles:
        return None
    first = profiles[0]
    agg = LaunchProfile(
        kernel=label,
        device=first.device,
        grid=first.grid,
        block=first.block,
        api=first.api,
    )
    bound_time: dict = {}
    compiled = set()
    for p in profiles:
        for k, v in p.issue_cycles.items():
            agg.issue_cycles[k] = agg.issue_cycles.get(k, 0.0) + v
        for k, v in p.instr_counts.items():
            agg.instr_counts[k] = agg.instr_counts.get(k, 0) + v
        for name, st in p.caches.items():
            agg.caches.setdefault(name, CacheStats()).add(
                CacheStats(st.hits, st.misses)
            )
        agg.warp_instructions += p.warp_instructions
        agg.mem_instructions += p.mem_instructions
        agg.blocks += p.blocks
        agg.barriers += p.barriers
        agg.gmem_requests += p.gmem_requests
        agg.gmem_transactions += p.gmem_transactions
        agg.dram_bytes += p.dram_bytes
        agg.timing_dram_bytes += p.timing_dram_bytes
        agg.shared_accesses += p.shared_accesses
        agg.shared_bank_replays += p.shared_bank_replays
        agg.spill_bytes += p.spill_bytes
        agg.launch_overhead_s += p.launch_overhead_s
        # a kernel is compiled once however many times it launches
        if p.kernel not in compiled:
            compiled.add(p.kernel)
            agg.compile_s += p.compile_s
        agg.total_s += p.total_s
        agg.comp_s += p.comp_s
        agg.mem_s += p.mem_s
        agg.bw_s += p.bw_s
        agg.hot_s += p.hot_s
        agg.occupancy_warps = p.occupancy_warps
        agg.occupancy_blocks = p.occupancy_blocks
        agg.occupancy_limiter = p.occupancy_limiter
        bound_time[p.bound_term] = bound_time.get(p.bound_term, 0.0) + p.total_s
    agg.queued_s = min(p.queued_s for p in profiles)
    agg.start_s = min(p.start_s for p in profiles)
    agg.end_s = max(p.end_s for p in profiles)
    agg.bound_term = max(bound_time, key=bound_time.get)
    agg.bound = "compute" if agg.bound_term == "compute" else "memory"
    return agg
