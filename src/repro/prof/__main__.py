"""CLI: profile a benchmark and emit an ASCII report + chrome trace.

Usage::

    python -m repro.prof BFS --device gtx480
    python -m repro.prof MD Sobel --device gtx280 --api opencl --size small
    python -m repro.prof FFT --device gtx480 --trace fft.trace.json
"""
from __future__ import annotations

import argparse
import sys

from .collect import profile_benchmark
from .report import render_run
from .trace import write_chrome_trace

__all__ = ["main"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.prof",
        description="Per-launch profiling of a simulated benchmark run",
    )
    ap.add_argument("benchmarks", nargs="+", help="benchmark name(s), e.g. BFS MD FFT")
    ap.add_argument("--device", default="gtx480", help="device name (default: gtx480)")
    ap.add_argument(
        "--api", default="cuda", choices=["cuda", "opencl"], help="runtime to profile"
    )
    ap.add_argument("--size", default="small", choices=["small", "default"])
    ap.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="chrome-trace output path (default: <bench>.<device>.trace.json)",
    )
    ap.add_argument(
        "--no-trace", action="store_true", help="skip writing the trace JSON"
    )
    args = ap.parse_args(argv)

    failures = 0
    for name in args.benchmarks:
        try:
            bp = profile_benchmark(
                name, args.device, api=args.api, size=args.size
            )
        except KeyError as e:
            ap.error(str(e.args[0] if e.args else e))
        title = f"{bp.benchmark} [{args.size}]"
        print(render_run(bp.launches, title=title))
        if not bp.result.ok():
            print(
                f"note: benchmark did not complete cleanly "
                f"({bp.result.failure or 'incorrect output'})"
            )
        violations = bp.check()
        if violations:
            failures += 1
            print("profiler invariant violations:", file=sys.stderr)
            for v in violations:
                print(f"  !! {v}", file=sys.stderr)
        else:
            print(f"profiler invariants: OK ({len(bp.launches)} launches)")
        if not args.no_trace and bp.launches:
            path = args.trace or f"{bp.benchmark.lower()}.{bp.device.lower().replace('/', '')}.trace.json"
            if args.trace and len(args.benchmarks) > 1:
                # one trace per benchmark: suffix instead of overwriting
                stem = path[: -len(".json")] if path.endswith(".json") else path
                path = f"{stem}.{bp.benchmark.lower()}.json"
            write_chrome_trace(
                bp.launches, path, process_name=f"{bp.benchmark} on {bp.device}"
            )
            print(f"chrome trace written to {path} (open in chrome://tracing)")
        print()
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
