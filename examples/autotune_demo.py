#!/usr/bin/env python
"""Per-platform auto-tuning — the paper's proposed future work (§VI).

"We would like to develop an auto-tuner to adapt general-purpose OpenCL
programs to all available specific platforms."  This demo sweeps the
work-group size of DeviceMemory and the local-memory toggle of TranP on
every OpenCL device and reports the per-device winners — showing that
the best configuration is genuinely platform-specific (e.g. explicit
local memory wins on GPUs and loses on the CPU).

Run:  python examples/autotune_demo.py
"""
from repro.arch import GTX280, GTX480, HD5870, INTEL920
from repro.core import autotune


def main():
    print("== DeviceMemory: best work-group size per device ==")
    for spec in (GTX280, GTX480, HD5870, INTEL920):
        res = autotune(
            "DeviceMemory",
            spec,
            axes={"wg": [64, 128, 256]},
            api="opencl",
            size="small",
        )
        trace = ", ".join(
            f"wg={o['wg']}:{v:.1f}" for o, v in res.trace if v is not None
        )
        print(
            f"  {spec.name:9s} best wg={res.best_options['wg']:<4d} "
            f"-> {res.best_value:7.2f} {res.unit}   ({trace})"
        )

    print("\n== TranP: should the kernel stage through local memory? ==")
    for spec in (GTX280, GTX480, INTEL920):
        res = autotune(
            "TranP",
            spec,
            axes={"use_local": [True, False]},
            api="opencl",
            size="small",
        )
        print(
            f"  {spec.name:9s} best use_local={res.best_options['use_local']!s:5s} "
            f"-> {res.best_value:7.2f} {res.unit}"
        )
    print(
        "\nGPUs want the staged transpose; the CPU device is faster without\n"
        "it — the paper's §V TranP observation, found automatically."
    )


if __name__ == "__main__":
    main()
