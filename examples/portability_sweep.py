#!/usr/bin/env python
"""OpenCL portability sweep — the paper's §V, interactively.

Enumerates the installed OpenCL platforms exactly like a portable host
program would (``clGetPlatformIDs`` style), then runs a selection of
benchmarks on every device, reporting the value, an "ABT" for
out-of-resource aborts (Cell/BE), and an "FL" for runs that complete
with wrong results (the warp-size-32 assumption on wavefront-64 and
SSE-lane devices).

Run:  python examples/portability_sweep.py
"""
from repro.benchsuite import get_benchmark, host_for
from repro.runtime import opencl as cl

BENCHES = ["Sobel", "TranP", "Reduce", "MD", "Scan", "RdxS", "STNW", "MxM"]


def main():
    print("installed platforms:")
    devices = []
    for p in cl.get_platforms():
        for d in p.get_devices():
            print(
                f"  {p.name:42s} {d.name:10s} {d.device_type:28s} "
                f"warp/wavefront={d.warp_size:3d} local={d.local_mem_size // 1024}KB"
            )
            devices.append(d)
    print()

    header = f"{'benchmark':10s} {'unit':14s}" + "".join(
        f"{d.name:>12s}" for d in devices
    )
    print(header)
    print("-" * len(header))
    for name in BENCHES:
        bench = get_benchmark(name)
        row = f"{name:10s} {bench.metric.unit:14s}"
        for d in devices:
            r = get_benchmark(name).run(
                host_for("opencl", d.spec), size="small"
            )
            if r.failure == "ABT":
                cell = "ABT"
            elif not r.correct:
                cell = "FL"
            else:
                cell = f"{r.value:.3g}"
            row += f"{cell:>12s}"
        print(row)
    print()
    print(
        "ABT = CL_OUT_OF_RESOURCES at enqueue (Cell/BE local store);\n"
        "FL  = completed with wrong results (hard-coded WARP_SIZE 32 vs\n"
        "      the device's wavefront width — the paper's RdxS bug)."
    )


if __name__ == "__main__":
    main()
