#!/usr/bin/env python
"""Compiler explorer: one kernel source, two PTX outputs (Table V).

Renders the FFT "forward" kernel in both dialects, compiles it through
NVOPENCC and CLC, prints both PTX listings side by side with the
instruction histogram of the paper's Table V, and explains where each
asymmetry comes from.

Run:  python examples/compiler_explorer.py [--full]
"""
import sys

from repro.benchsuite.apps.fft import _forward_kernel
from repro.compiler import compile_cuda, compile_opencl
from repro.kir import CUDA, OPENCL, render
from repro.ptx import format_kernel, histogram, table


def main():
    full = "--full" in sys.argv
    kc_src = _forward_kernel(CUDA)
    ko_src = _forward_kernel(OPENCL)
    print("=== shared kernel source (CUDA spelling) ===")
    print(render(kc_src))
    print()
    kc = compile_cuda(kc_src)
    ko = compile_opencl(ko_src)
    print("=== Table V: static PTX instruction statistics ===")
    print(table(kc, ko))
    print()
    hc, ho = histogram(kc), histogram(ko)
    print("where the asymmetries come from:")
    print(
        f"  mov {hc['mov']} vs {ho.get('mov', 0)}: NVOPENCC's two-address, "
        "home-register emission (ptxas renames them away in SASS)"
    )
    print(
        f"  shl {hc.get('shl', 0)} vs {ho.get('shl', 0)}: CLC computes "
        "addresses with shift+add; NVOPENCC folds them into mad"
    )
    print(
        f"  div {hc.get('div', 0)} vs {ho.get('div', 0)}: NVOPENCC's "
        "constant propagation resolves the unrolled Stockham counters, "
        "so u/m strength-reduces; CLC leaves real divisions"
    )
    print(
        f"  bra {hc.get('bra', 0)} vs {ho.get('bra', 0)}: NVOPENCC "
        "predicates the twiddle shortcut; CLC branches"
    )
    same = [
        k
        for k in ("ld.global", "st.global", "ld.shared", "st.shared", "bar")
        if hc.get(k, 0) == ho.get(k, 0)
    ]
    print(f"  identical (as in the paper): {', '.join(same)}")
    if full:
        print("\n=== NVOPENCC PTX ===")
        print(format_kernel(kc))
        print("\n=== CLC PTX ===")
        print(format_kernel(ko))
    else:
        print("\n(pass --full to dump both PTX listings)")


if __name__ == "__main__":
    main()
