#!/usr/bin/env python
"""The eight-step fair-comparison methodology, on the Sobel benchmark.

Reproduces the paper's §IV-B.3/§IV-C reasoning as executable code:

1. run Sobel as shipped (OpenCL keeps the filter in constant memory,
   CUDA does not) on both GPU generations;
2. audit the comparison against the eight steps of Fig. 9 — the audit
   flags step 4 (native kernel optimizations) as unequal;
3. equalize step 4 and re-run: the comparison becomes fair and the PR
   returns to the similarity band;
4. run the automated gap attribution on MD, whose gap comes from the
   texture-memory programming-model difference instead.

Run:  python examples/fair_comparison.py
"""
from repro.arch import GTX280, GTX480
from repro.core import attribute_gap, compare


def main():
    for spec in (GTX280, GTX480):
        print(f"===== Sobel on {spec.name} =====")
        shipped = compare("Sobel", spec, size="small")
        print(f"as shipped:    PR = {shipped.pr.pr:.3f}  ({shipped.pr.verdict})")
        print(f"fair per Fig. 9? {shipped.fair}")
        for f in shipped.fairness:
            print(f"  differs at {f}")
        equalized = compare(
            "Sobel", spec, size="small", cuda_options={"use_constant": True}
        )
        print(
            f"after equalizing step 4 (constant memory in both): "
            f"PR = {equalized.pr.pr:.3f}  fair? {equalized.fair}"
        )
        print()

    print("===== automated gap attribution: MD on GTX280 =====")
    print(attribute_gap("MD", GTX280).report())
    print()
    print("===== automated gap attribution: FFT on GTX480 =====")
    print(attribute_gap("FFT", GTX480).report())
    print()
    print(
        "Conclusion (the paper's): under a fair comparison there is no\n"
        "fundamental reason for OpenCL to perform worse than CUDA —\n"
        "remaining gaps trace to programmers (steps 1-4), compilers\n"
        "(steps 5-6), or users (steps 7-8)."
    )


if __name__ == "__main__":
    main()
