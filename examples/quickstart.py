#!/usr/bin/env python
"""Quickstart: author one kernel, run it through both toolchains.

Builds a SAXPY kernel in the CUDA and OpenCL dialects from one source
function, compiles each with its period-accurate front end, executes
both on the simulated GTX480, verifies results, and prints the
Performance Ratio — the paper's Eq. (1) — plus the generated PTX.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.arch import GTX480
from repro.benchsuite.base import host_for
from repro.core.metrics import performance_ratio
from repro.benchsuite.base import Metric
from repro.kir import CUDA, KernelBuilder, OPENCL, Scalar, render
from repro.ptx import format_kernel


def build_saxpy(dialect):
    """One source, two dialects — the paper's 'same implementation'."""
    k = KernelBuilder("saxpy", dialect)
    x = k.buffer("x", Scalar.F32)
    y = k.buffer("y", Scalar.F32)
    out = k.buffer("out", Scalar.F32)
    alpha = k.scalar("alpha", Scalar.F32)
    n = k.scalar("n", Scalar.S32)
    i = k.let("i", k.global_id(0))
    with k.if_(i < n):
        k.store(out, i, x[i] * alpha + y[i])
    return k.finish()


def main():
    n = 4096
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, n).astype(np.float32)
    y = rng.uniform(-1, 1, n).astype(np.float32)
    alpha = np.float32(2.5)

    times = {}
    for api in ("cuda", "opencl"):
        host = host_for(api, GTX480)
        kern = build_saxpy(host.dialect)
        print(f"--- {api} source ---")
        print(render(kern))
        host.build([kern])
        bx = host.alloc(n)
        by = host.alloc(n)
        bo = host.alloc(n)
        host.write(bx, x)
        host.write(by, y)
        secs = host.launch("saxpy", n, 256, x=bx, y=by, out=bo, alpha=alpha, n=n)
        got = host.read(bo, n)
        assert np.allclose(got, x * alpha + y, rtol=1e-5)
        times[api] = secs
        gbs = 3 * n * 4 / secs / 1e9
        print(f"{api}: kernel {secs * 1e6:.2f} us  ({gbs:.1f} GB/s effective)\n")

    pr = performance_ratio(
        1 / times["opencl"], 1 / times["cuda"], Metric("1/sec")
    )
    print(f"Performance Ratio (OpenCL/CUDA): {pr:.3f}")
    print("(|1 - PR| < 0.1 counts as 'similar performance' in the paper)")

    # peek at the compiled PTX of the CUDA build
    host = host_for("cuda", GTX480)
    kern = build_saxpy(host.dialect)
    host.build([kern])
    print("\n--- nvopencc PTX ---")
    print(format_kernel(host.fns["saxpy"].ptx))


if __name__ == "__main__":
    main()
