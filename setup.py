from setuptools import setup

# Shim for environments without the `wheel` package (no-network installs):
# enables `pip install -e . --no-use-pep517 --no-build-isolation`.
setup()
