"""Fig. 7 — FDTD unroll points, CUDA vs OpenCL.

Regenerates the experiment end to end (workload generation, both
toolchains, simulation, shape checks against the paper's reported
values) and reports the wall time of the regeneration.
"""
from conftest import run_and_check


def test_fig7(benchmark, bench_size):
    run_and_check(benchmark, "fig7", bench_size, allow_misses=0)
