"""Benchmark harness configuration.

Each ``benchmarks/test_*.py`` regenerates one figure or table of the
paper through ``repro.experiments``, times the regeneration with
pytest-benchmark, prints the rows the paper reports, and asserts the
shape checks recorded against the paper hold.

The problem size defaults to the experiments' "default" (paper-shaped)
workloads; set ``REPRO_BENCH_SIZE=small`` for a quick pass.
"""
import os

import pytest


@pytest.fixture(scope="session")
def bench_size():
    return os.environ.get("REPRO_BENCH_SIZE", "default")


def run_and_check(benchmark, name, size, allow_misses=0):
    from repro.experiments.runner import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(name,), kwargs={"size": size}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    misses = [c for c in result.checks if not c["holds"]]
    assert len(misses) <= allow_misses, misses
    return result
