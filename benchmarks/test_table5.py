"""Table V — PTX instruction statistics for the FFT kernel.

Regenerates the experiment end to end (workload generation, both
toolchains, simulation, shape checks against the paper's reported
values) and reports the wall time of the regeneration.
"""
from conftest import run_and_check


def test_table5(benchmark, bench_size):
    run_and_check(benchmark, "table5", bench_size, allow_misses=0)
