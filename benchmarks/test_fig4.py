"""Fig. 4 — texture-memory impact on CUDA MD/SPMV.

Regenerates the experiment end to end (workload generation, both
toolchains, simulation, shape checks against the paper's reported
values) and reports the wall time of the regeneration.
"""
from conftest import run_and_check


def test_fig4(benchmark, bench_size):
    run_and_check(benchmark, "fig4", bench_size, allow_misses=0)
