"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's figures, these pin the architectural mechanisms in
isolation so a regression in any one of them is visible directly:

* coalescing (DeviceMemory coalesced vs strided),
* shared-memory bank conflicts (TranP padded tile vs naive),
* constant-cache broadcast (Sobel const on/off per generation),
* texture-cache gathers (MD tex on/off per generation),
* the degraded-allocator spill collapse (FDTD pragma a, OpenCL),
* launch-overhead sensitivity (BFS wall vs kernel time).
"""
import pytest

from repro.arch import GTX280, GTX480
from repro.benchsuite import get_benchmark, host_for


def _value(name, api, spec, size="small", **options):
    return get_benchmark(name).run(host_for(api, spec), size=size, options=options)


def test_coalescing_ablation(benchmark):
    def run():
        co = _value("DeviceMemory", "cuda", GTX280, pattern="coalesced")
        st = _value("DeviceMemory", "cuda", GTX280, pattern="strided")
        return co.value, st.value

    co, st = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncoalesced {co:.1f} GB/s vs strided {st:.1f} GB/s -> {co / st:.1f}x")
    assert co > 2 * st


def test_bank_conflict_ablation(benchmark):
    # the banks model directly: padded vs unpadded column access
    import numpy as np

    from repro.arch import bank_conflicts

    def run():
        ty = np.arange(16, dtype=np.int64)
        return (
            bank_conflicts(GTX280, (ty * 17) * 4),
            bank_conflicts(GTX280, (ty * 16) * 4),
        )

    padded, unpadded = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npadded tile replays {padded} vs unpadded {unpadded}")
    assert padded == 1 and unpadded == 16


def test_constant_cache_ablation(benchmark):
    def run():
        out = {}
        for spec in (GTX280, GTX480):
            w = _value("Sobel", "cuda", spec, use_constant=True)
            wo = _value("Sobel", "cuda", spec, use_constant=False)
            out[spec.name] = wo.kernel_seconds / w.kernel_seconds
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nconstant-memory speedup: {speedups}")
    assert speedups["GTX280"] > 1.3
    assert speedups["GTX280"] > speedups["GTX480"]


def test_texture_cache_ablation(benchmark):
    def run():
        out = {}
        for spec in (GTX280, GTX480):
            w = _value("MD", "cuda", spec, use_texture=True)
            wo = _value("MD", "cuda", spec, use_texture=False)
            out[spec.name] = w.value / wo.value
        return out

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntexture gain: {gains}")
    assert all(g > 1.0 for g in gains.values())


def test_spill_collapse_ablation(benchmark):
    def run():
        w = _value("FDTD", "opencl", GTX280, unroll_a=9)
        wo = _value("FDTD", "opencl", GTX280, unroll_a=None)
        return wo.value / w.value

    slowdown = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nOpenCL pragma-a slowdown: {slowdown:.2f}x")
    assert slowdown > 1.2


def test_launch_overhead_ablation(benchmark):
    def run():
        cu = _value("BFS", "cuda", GTX480)
        cl = _value("BFS", "opencl", GTX480)
        return (cl.wall_seconds / cu.wall_seconds, cl.kernel_seconds / cu.kernel_seconds)

    wall, kern = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nBFS wall ratio {wall:.2f} vs kernel ratio {kern:.2f}")
    assert wall > kern  # the gap is enqueue latency, not device work


def test_occupancy_ablation(benchmark):
    """Register pressure -> occupancy -> time, end to end."""

    def run():
        lo = _value("DeviceMemory", "cuda", GTX280, wg=64)
        hi = _value("DeviceMemory", "cuda", GTX280, wg=256)
        return lo.value, hi.value

    lo, hi = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nwg=64: {lo:.1f} GB/s, wg=256: {hi:.1f} GB/s")
    assert lo > 0 and hi > 0
