"""Fig. 3 — PR of all real-world benchmarks on both GPUs.

Regenerates the experiment end to end (workload generation, both
toolchains, simulation, shape checks against the paper's reported
values) and reports the wall time of the regeneration.
"""
from conftest import run_and_check


def test_fig3(benchmark, bench_size):
    run_and_check(benchmark, "fig3", bench_size, allow_misses=0)
