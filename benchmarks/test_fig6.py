"""Fig. 6 — FDTD loop-unrolling impact (CUDA).

Regenerates the experiment end to end (workload generation, both
toolchains, simulation, shape checks against the paper's reported
values) and reports the wall time of the regeneration.
"""
from conftest import run_and_check


def test_fig6(benchmark, bench_size):
    run_and_check(benchmark, "fig6", bench_size, allow_misses=0)
